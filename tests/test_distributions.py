"""Tests for the distribution library and the RNG wrapper."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Dirac,
    Exponential,
    ModelError,
    RandomSource,
    Uniform,
    Weighted,
    delay_distribution,
    ensure_rng,
)


class TestExponential:
    def test_mean(self):
        assert Exponential(4.0).mean() == pytest.approx(0.25)

    def test_sampling_mean(self):
        rng = RandomSource(1)
        dist = Exponential(2.0)
        samples = [dist.sample(rng) for _ in range(4000)]
        assert sum(samples) / len(samples) == pytest.approx(0.5, rel=0.1)

    def test_rejects_bad_rate(self):
        with pytest.raises(ModelError):
            Exponential(0)
        with pytest.raises(ModelError):
            Exponential(-1)


class TestUniform:
    def test_mean(self):
        assert Uniform(2, 6).mean() == 4.0

    def test_support(self):
        rng = RandomSource(2)
        dist = Uniform(3, 7)
        for _ in range(200):
            assert 3 <= dist.sample(rng) <= 7

    def test_rejects_bad_support(self):
        with pytest.raises(ModelError):
            Uniform(5, 2)
        with pytest.raises(ModelError):
            Uniform(-1, 2)


class TestDirac:
    def test_constant(self):
        dist = Dirac(3.5)
        rng = RandomSource(3)
        assert dist.sample(rng) == 3.5
        assert dist.mean() == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ModelError):
            Dirac(-1)


class TestWeighted:
    def test_normalisation(self):
        dist = Weighted([("a", 98), ("b", 2)])
        assert dist.probabilities == (0.98, 0.02)

    def test_zero_weights_dropped(self):
        dist = Weighted([("a", 1), ("b", 0)])
        assert dist.support() == ("a",)

    def test_sampling_frequencies(self):
        dist = Weighted([("a", 3), ("b", 1)])
        rng = RandomSource(4)
        hits = sum(1 for _ in range(4000) if dist.sample(rng) == "a")
        assert 0.70 < hits / 4000 < 0.80

    def test_rejects_empty_and_negative(self):
        with pytest.raises(ModelError):
            Weighted([])
        with pytest.raises(ModelError):
            Weighted([("a", -1), ("b", 2)])
        with pytest.raises(ModelError):
            Weighted([("a", 0)])


class TestDelayDistribution:
    def test_unbounded_is_exponential(self):
        dist = delay_distribution(0, None, rate=3.0)
        assert isinstance(dist, Exponential)
        assert dist.rate == 3.0

    def test_unbounded_with_lower_bound_is_shifted(self):
        dist = delay_distribution(2, math.inf, rate=1.0)
        rng = RandomSource(5)
        for _ in range(100):
            assert dist.sample(rng) >= 2

    def test_bounded_is_uniform(self):
        dist = delay_distribution(2, 5)
        assert isinstance(dist, Uniform)
        assert (dist.low, dist.high) == (2, 5)

    def test_point_is_dirac(self):
        assert isinstance(delay_distribution(3, 3), Dirac)

    def test_empty_interval_rejected(self):
        with pytest.raises(ModelError):
            delay_distribution(5, 2)


class TestRandomSource:
    def test_deterministic_given_seed(self):
        a = [RandomSource(7).random() for _ in range(5)]
        b = [RandomSource(7).random() for _ in range(5)]
        assert a == b

    def test_spawn_is_independent(self):
        parent = RandomSource(8)
        child = parent.spawn()
        assert child.seed != parent.seed

    def test_ensure_rng(self):
        rng = RandomSource(9)
        assert ensure_rng(rng) is rng
        assert isinstance(ensure_rng(5), RandomSource)
        assert isinstance(ensure_rng(None), RandomSource)

    def test_choice_and_shuffle(self):
        rng = RandomSource(10)
        items = list(range(10))
        assert rng.choice(items) in items
        rng.shuffle(items)
        assert sorted(items) == list(range(10))

    def test_randint_inclusive(self):
        rng = RandomSource(11)
        values = {rng.randint(1, 3) for _ in range(100)}
        assert values == {1, 2, 3}


@settings(max_examples=100, deadline=None)
@given(st.lists(st.tuples(st.text(min_size=1, max_size=3),
                          st.integers(1, 100)),
                min_size=1, max_size=6))
def test_weighted_probabilities_sum_to_one(pairs):
    dist = Weighted(pairs)
    assert sum(dist.probabilities) == pytest.approx(1.0)
