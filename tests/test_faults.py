"""Fault-tolerance tests (:mod:`repro.runtime.faults`).

The load-bearing property mirrors the runtime suite's: because tasks
are pure functions of their spawn-keyed seed chunks, a campaign that
loses workers, suffers raising tasks, or hangs past its timeout must —
after recovery — produce **bit-identical estimates and identical
logical metric totals** to a fault-free serial run.

The process-pool tests honour ``REPRO_MP_START`` (``fork`` / ``spawn``)
so CI can exercise both multiprocessing start methods; spawn is the
one that catches pickling bugs in the fault machinery itself.
"""

import json
import os

import pytest

from repro.core import AnalysisError, TaskError
from repro.obs.metrics import Collector, collecting
from repro.runtime import (
    Checkpoint,
    FaultInjector,
    FaultPolicy,
    InjectedFault,
    ParallelExecutor,
    SerialExecutor,
    task_seed,
)
from repro.smc import estimate_mean, estimate_probability, sprt

MP_START = os.environ.get("REPRO_MP_START") or None


@pytest.fixture(scope="module")
def pool2():
    with ParallelExecutor(workers=2, mp_context=MP_START) as executor:
        yield executor


# Module-level run closures (picklable).

def biased_coin(rng):
    return rng.random() < 0.3


def uniform_sample(rng):
    return rng.uniform(0.0, 10.0)


def snapshot_probability(executor, fault_policy=None, checkpoint=None,
                         runs=200):
    collector = Collector("campaign")
    with collecting(collector):
        estimate = estimate_probability(
            biased_coin, runs=runs, rng=13, executor=executor,
            batch_size=10, fault_policy=fault_policy,
            checkpoint=checkpoint)
    return estimate, collector.snapshot()["counters"]


def logical(counters):
    return {key: value for key, value in counters.items()
            if key.startswith("smc.")}


class TestFaultPolicy:
    def test_validation(self):
        with pytest.raises(AnalysisError):
            FaultPolicy(max_retries=-1)
        with pytest.raises(AnalysisError):
            FaultPolicy(on_exhausted="explode")
        with pytest.raises(AnalysisError):
            FaultPolicy(timeout=0)

    def test_delay_is_deterministic_and_backs_off(self):
        policy = FaultPolicy(backoff=0.1, backoff_factor=2.0, jitter=0.5)
        first = [policy.delay(attempt, seed=99) for attempt in range(3)]
        again = [policy.delay(attempt, seed=99) for attempt in range(3)]
        assert first == again
        # Exponential growth survives the bounded jitter.
        assert first[1] > first[0] and first[2] > first[1]
        bare = FaultPolicy(backoff=0.1, backoff_factor=2.0, jitter=0.0)
        assert [bare.delay(a, seed=1) for a in range(3)] == \
            [0.1, 0.2, 0.4]

    def test_task_seed_finds_seed_chunk(self):
        assert task_seed((biased_coin, [17, 18, 19])) == 17
        assert task_seed(("model", (), [5])) == 5
        assert task_seed(("no", "seeds", ())) is None

    def test_injector_fires_on_first_attempt_only(self):
        injector = FaultInjector(raises={2})
        with pytest.raises(InjectedFault):
            injector(2, 0, in_worker=False)
        injector(2, 1, in_worker=False)  # replay: no fire
        injector(3, 0, in_worker=False)  # other index: no fire


class TestSerialRecovery:
    def test_retry_recovers_injected_raise(self):
        policy = FaultPolicy(max_retries=2, backoff=0.0,
                             injector=FaultInjector(raises={3, 5}))
        reference, _ = snapshot_probability(SerialExecutor())
        estimate, counters = snapshot_probability(SerialExecutor(),
                                                  fault_policy=policy)
        assert (estimate.successes, estimate.runs) == \
            (reference.successes, reference.runs)
        assert counters["runtime.retries"] == 2

    def test_serial_kill_injection_surfaces_as_fault(self):
        # No worker to kill: the injector raises instead, and the
        # policy recovers it like any task fault.
        policy = FaultPolicy(max_retries=1, backoff=0.0,
                             injector=FaultInjector(kill={2}))
        reference, _ = snapshot_probability(SerialExecutor())
        estimate, _ = snapshot_probability(SerialExecutor(),
                                           fault_policy=policy)
        assert estimate.successes == reference.successes

    def test_exhausted_fail_raises_task_error(self):
        def always_raise(rng):
            raise ValueError("boom")

        policy = FaultPolicy(max_retries=1, backoff=0.0)
        with pytest.raises(TaskError) as excinfo:
            list(SerialExecutor().imap(
                lambda seed: always_raise(seed), [(1,)], policy=policy))
        assert excinfo.value.index == 0

    def test_exhausted_skip_drops_task(self):
        policy = FaultPolicy(max_retries=0, backoff=0.0,
                             on_exhausted="skip",
                             injector=FaultInjector(raises={1}))
        collector = Collector("skip")

        def identity(value):
            return value

        with collecting(collector):
            results = list(SerialExecutor().imap(
                identity, [(0,), (1,), (2,)], policy=policy))
        # Injections fire on attempt 0 only, and skip means the task's
        # result is simply absent.
        assert results == [0, 2]
        assert collector.snapshot()["counters"]["runtime.skipped"] == 1

    def test_exhausted_degrade_runs_one_clean_attempt(self):
        policy = FaultPolicy(max_retries=0, backoff=0.0,
                             on_exhausted="degrade-to-serial",
                             injector=FaultInjector(raises={1}))
        collector = Collector("degrade")

        def identity(value):
            return value

        with collecting(collector):
            results = list(SerialExecutor().imap(
                identity, [(0,), (1,), (2,)], policy=policy))
        assert results == [0, 1, 2]
        assert collector.snapshot()["counters"]["runtime.degraded"] == 1


class TestParallelRecovery:
    def test_kill_and_raise_equivalence(self, pool2):
        """The acceptance scenario: a worker killed mid-campaign plus
        two raising tasks must not change the estimate or any logical
        metric total relative to a fault-free serial run."""
        reference, ref_counters = snapshot_probability(SerialExecutor())
        policy = FaultPolicy(
            max_retries=3, backoff=0.01,
            injector=FaultInjector(kill={1}, raises={3, 5}))
        estimate, counters = snapshot_probability(pool2,
                                                  fault_policy=policy)
        assert (estimate.successes, estimate.runs, estimate.low,
                estimate.high) == (reference.successes, reference.runs,
                                   reference.low, reference.high)
        assert logical(counters) == logical(ref_counters)
        assert counters["runtime.tasks"] == ref_counters["runtime.tasks"]
        assert counters["runtime.pool_rebuilds"] >= 1
        assert counters["runtime.retries"] >= 1

    def test_hang_recovery_by_timeout(self, pool2):
        reference, _ = snapshot_probability(SerialExecutor(), runs=100)
        policy = FaultPolicy(
            timeout=2.0, max_retries=2, backoff=0.01,
            injector=FaultInjector(hang={2}, hang_seconds=30.0))
        estimate, counters = snapshot_probability(pool2,
                                                  fault_policy=policy,
                                                  runs=100)
        assert (estimate.successes, estimate.runs) == \
            (reference.successes, reference.runs)
        assert counters["runtime.timeouts"] >= 1
        assert counters["runtime.pool_rebuilds"] >= 1

    def test_replay_preserves_estimate_without_collector(self, pool2):
        # Fault recovery must not depend on the observability layer.
        reference = estimate_probability(biased_coin, runs=200, rng=13,
                                         executor=SerialExecutor(),
                                         batch_size=10)
        policy = FaultPolicy(max_retries=2, backoff=0.01,
                             injector=FaultInjector(raises={4}))
        estimate = estimate_probability(biased_coin, runs=200, rng=13,
                                        executor=pool2, batch_size=10,
                                        fault_policy=policy)
        assert (estimate.successes, estimate.runs) == \
            (reference.successes, reference.runs)

    def test_exhausted_fail_carries_index_and_seed(self, pool2):
        policy = FaultPolicy(max_retries=0, backoff=0.0,
                             injector=FaultInjector(raises={2}))

        def consume():
            return snapshot_probability(pool2, fault_policy=policy)

        with pytest.raises(TaskError) as excinfo:
            consume()
        # The retry loop replays the injected index once (attempt 1
        # does not re-fire), so exhaustion at max_retries=0 blames the
        # injected task.
        assert excinfo.value.index == 2
        assert excinfo.value.seed is not None

    def test_degrade_to_serial_in_pool(self, pool2):
        reference, ref_counters = snapshot_probability(SerialExecutor())
        policy = FaultPolicy(max_retries=0, backoff=0.0,
                             on_exhausted="degrade-to-serial",
                             injector=FaultInjector(raises={2}))
        estimate, counters = snapshot_probability(pool2,
                                                  fault_policy=policy)
        assert (estimate.successes, estimate.runs) == \
            (reference.successes, reference.runs)
        assert logical(counters) == logical(ref_counters)
        assert counters["runtime.degraded"] == 1

    def test_sprt_with_faults_matches_verdict(self, pool2):
        policy = FaultPolicy(max_retries=2, backoff=0.01,
                             injector=FaultInjector(raises={1}))
        reference = sprt(biased_coin, theta=0.5, rng=7,
                         executor=SerialExecutor(), batch_size=16)
        verdict = sprt(biased_coin, theta=0.5, rng=7, executor=pool2,
                       batch_size=16, fault_policy=policy)
        assert bool(verdict) == bool(reference) is False


class TestCheckpoint:
    def fingerprinted(self, path, every=2):
        return Checkpoint(path, every=every)

    def test_resume_is_bit_identical(self, pool2, tmp_path):
        path = str(tmp_path / "campaign.json")
        reference, ref_counters = snapshot_probability(SerialExecutor())
        # First attempt dies mid-campaign under a fail-fast policy.
        policy = FaultPolicy(max_retries=0, backoff=0.0,
                             injector=FaultInjector(raises={12}))
        with pytest.raises(TaskError):
            snapshot_probability(pool2, fault_policy=policy,
                                 checkpoint=self.fingerprinted(path))
        saved = json.loads(open(path).read())
        assert 0 < saved["state"]["batch"] < 20
        # Resume: finishes the remaining batches and matches serial —
        # estimate and logical totals both.
        estimate, counters = snapshot_probability(
            pool2, checkpoint=self.fingerprinted(path))
        assert (estimate.successes, estimate.runs, estimate.low,
                estimate.high) == (reference.successes, reference.runs,
                                   reference.low, reference.high)
        assert logical(counters) == logical(ref_counters)
        assert not os.path.exists(path), "cleared on completion"

    def test_mean_resume_matches_samples(self, pool2, tmp_path):
        path = str(tmp_path / "mean.json")
        reference = estimate_mean(uniform_sample, runs=120, rng=7,
                                  executor=SerialExecutor(),
                                  batch_size=10)
        policy = FaultPolicy(max_retries=0, backoff=0.0,
                             injector=FaultInjector(raises={7}))
        with pytest.raises(TaskError):
            estimate_mean(uniform_sample, runs=120, rng=7,
                          executor=pool2, batch_size=10,
                          fault_policy=policy,
                          checkpoint=Checkpoint(path, every=1))
        resumed = estimate_mean(uniform_sample, runs=120, rng=7,
                                executor=pool2, batch_size=10,
                                checkpoint=Checkpoint(path, every=1))
        assert resumed.samples == reference.samples

    def test_fingerprint_mismatch_restarts(self, pool2, tmp_path):
        path = str(tmp_path / "stale.json")
        policy = FaultPolicy(max_retries=0, backoff=0.0,
                             injector=FaultInjector(raises={5}))
        with pytest.raises(TaskError):
            snapshot_probability(pool2, fault_policy=policy,
                                 checkpoint=Checkpoint(path, every=1))
        # Different campaign parameters: the stale checkpoint must be
        # ignored, not half-applied.
        reference = estimate_probability(biased_coin, runs=200, rng=99,
                                         executor=SerialExecutor(),
                                         batch_size=10)
        estimate = estimate_probability(biased_coin, runs=200, rng=99,
                                        executor=pool2, batch_size=10,
                                        checkpoint=Checkpoint(path,
                                                              every=1))
        assert estimate.successes == reference.successes

    def test_corrupt_checkpoint_is_ignored(self, tmp_path):
        path = str(tmp_path / "corrupt.json")
        with open(path, "w") as handle:
            handle.write("{not json")
        assert Checkpoint(path).load({"kind": "x"}) is None
        with open(path, "w") as handle:
            json.dump({"schema": "other/1"}, handle)
        assert Checkpoint(path).load({"kind": "x"}) is None

    def test_save_load_clear_roundtrip(self, tmp_path):
        path = str(tmp_path / "roundtrip.json")
        checkpoint = Checkpoint(path, every=3)
        assert [checkpoint.due(n) for n in (1, 2, 3, 4, 6)] == \
            [False, False, True, False, True]
        fingerprint = {"kind": "test", "runs": 10}
        checkpoint.save(fingerprint, {"batch": 4},
                        metrics={"counters": {"smc.runs": 40}})
        loaded = checkpoint.load(fingerprint)
        assert loaded["state"] == {"batch": 4}
        assert loaded["metrics"]["counters"]["smc.runs"] == 40
        assert checkpoint.load({"kind": "other"}) is None
        checkpoint.clear()
        checkpoint.clear()  # idempotent
        assert not os.path.exists(path)

    def test_checkpoint_requires_executor(self, tmp_path):
        with pytest.raises(AnalysisError):
            estimate_probability(biased_coin, runs=10, rng=1,
                                 checkpoint=Checkpoint(
                                     str(tmp_path / "x.json")))
        with pytest.raises(AnalysisError):
            estimate_probability(biased_coin, runs=10, rng=1,
                                 fault_policy=FaultPolicy())
