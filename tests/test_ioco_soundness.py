"""Property-based test of the ioco theory's soundness theorem.

Tretmans: the test-generation algorithm is *sound* — an implementation
that is ioco-conforming to the specification never fails a generated
test.  We generate random specification/implementation LTS pairs,
decide ioco exactly with the product check, and verify that test
execution verdicts agree (fail observed => non-conforming).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mbt import FAIL, LTS, LTSAdapter, ioco_check, run_test_suite

INPUTS = ["i1", "i2"]
OUTPUTS = ["o1", "o2"]


@st.composite
def random_iots(draw, name):
    n_states = draw(st.integers(min_value=1, max_value=4))
    lts = LTS(name, inputs=INPUTS, outputs=OUTPUTS)
    for index in range(n_states):
        lts.add_state(f"s{index}")
    n_transitions = draw(st.integers(min_value=0, max_value=6))
    labels = INPUTS + OUTPUTS
    for _ in range(n_transitions):
        source = f"s{draw(st.integers(0, n_states - 1))}"
        target = f"s{draw(st.integers(0, n_states - 1))}"
        label = draw(st.sampled_from(labels))
        lts.add_transition(source, label, target)
    return lts.make_input_enabled()


@settings(max_examples=40, deadline=None)
@given(random_iots("impl"), random_iots("spec"), st.integers(0, 1000))
def test_soundness(impl, spec, seed):
    """fail verdict observed on impl => impl is not ioco spec."""
    adapter = LTSAdapter(impl, rng=seed)
    verdicts, failures = run_test_suite(spec, adapter, n_tests=8,
                                        rng=seed + 1, max_depth=6)
    if failures:
        assert not ioco_check(impl, spec), (
            "a generated test failed an ioco-conforming implementation "
            f"(trace {failures[0]})")


@settings(max_examples=40, deadline=None)
@given(random_iots("impl"), st.integers(0, 1000))
def test_self_conformance_never_fails(impl, seed):
    """Every IOTS conforms to itself; its tests must always pass."""
    assert ioco_check(impl, impl)
    adapter = LTSAdapter(impl, rng=seed)
    _verdicts, failures = run_test_suite(impl, adapter, n_tests=6,
                                         rng=seed + 1, max_depth=6)
    assert failures == []


@settings(max_examples=40, deadline=None)
@given(random_iots("a"), random_iots("b"))
def test_ioco_check_is_decisive(a, b):
    verdict = ioco_check(a, b)
    assert verdict.conforms in (True, False)
    if not verdict.conforms:
        assert verdict.offending_output is not None
