"""Tests for the MDP engine: hand-solvable chains, precomputations,
value iteration, rewards, and property-based sanity on random MDPs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ModelError
from repro.mdp import (
    MDP,
    bounded_reachability,
    expected_total_reward,
    prob0_max,
    prob0_min,
    prob1_max,
    prob1_min,
    reachability_probability,
)


def coin_chain(p=0.5):
    """s0 --p--> goal, --(1-p)--> fail (absorbing)."""
    m = MDP()
    s0 = m.add_state()
    goal = m.add_state(labels=["goal"])
    fail = m.add_state()
    m.add_action(s0, [(p, goal), (1 - p, fail)])
    return m, s0, goal, fail


def retry_chain(p=0.3):
    """Retry until success: s0 --p--> goal, --(1-p)--> s0. Prob 1."""
    m = MDP()
    s0 = m.add_state()
    goal = m.add_state(labels=["goal"])
    m.add_action(s0, [(p, goal), (1 - p, s0)], reward=1.0)
    return m, s0, goal


class TestConstruction:
    def test_probabilities_must_sum_to_one(self):
        m = MDP()
        s = m.add_state()
        with pytest.raises(ModelError):
            m.add_action(s, [(0.5, s)])

    def test_negative_probability_rejected(self):
        m = MDP()
        s = m.add_state()
        t = m.add_state()
        with pytest.raises(ModelError):
            m.add_action(s, [(-0.5, s), (1.5, t)])

    def test_duplicate_targets_merged(self):
        m = MDP()
        s = m.add_state()
        t = m.add_state()
        m.add_action(s, [(0.5, t), (0.5, t)])
        [(label, pairs, reward)] = m.actions_of(s)
        assert pairs == ((t, 1.0),)

    def test_absorbing_states_get_self_loop(self):
        m, s0, goal, fail = coin_chain()
        m.finalize()
        assert m.actions_of(goal) == [(None, ((goal, 1.0),), 0.0)]

    def test_frozen_rejects_changes(self):
        m, s0, goal, fail = coin_chain()
        m.finalize()
        with pytest.raises(ModelError):
            m.add_state()

    def test_labels(self):
        m, s0, goal, fail = coin_chain()
        assert m.states_with("goal") == {goal}
        m.label_state(fail, "fail")
        assert m.states_with("fail") == {fail}


class TestPrecomputation:
    def test_prob0_max(self):
        m, s0, goal, fail = coin_chain()
        m.finalize()
        assert prob0_max(m, {goal}) == {fail}

    def test_prob0_min_with_choice(self):
        # A state with a choice between goal and a safe loop: min prob 0.
        m = MDP()
        s0 = m.add_state()
        goal = m.add_state()
        m.add_action(s0, [(1.0, goal)])
        m.add_action(s0, [(1.0, s0)])
        m.finalize()
        assert s0 in prob0_min(m, {goal})

    def test_prob1_max(self):
        m, s0, goal = retry_chain()
        m.finalize()
        assert s0 in prob1_max(m, {goal})

    def test_prob1_max_excludes_coin(self):
        m, s0, goal, fail = coin_chain()
        m.finalize()
        assert s0 not in prob1_max(m, {goal})

    def test_prob1_min(self):
        # Choice between certain goal and certain avoidance: min prob 0.
        m = MDP()
        s0 = m.add_state()
        goal = m.add_state()
        m.add_action(s0, [(1.0, goal)])
        m.add_action(s0, [(1.0, s0)])
        m.finalize()
        assert s0 not in prob1_min(m, {goal})
        # Without the escape action it is 1.
        m2, s, g = retry_chain()
        m2.finalize()
        assert s in prob1_min(m2, {g})


class TestReachability:
    def test_coin(self):
        m, s0, goal, fail = coin_chain(0.3)
        v = reachability_probability(m, {goal})
        assert v[s0] == pytest.approx(0.3)
        assert v[goal] == 1.0
        assert v[fail] == 0.0

    def test_retry_reaches_almost_surely(self):
        m, s0, goal = retry_chain(0.25)
        v = reachability_probability(m, {goal})
        assert v[s0] == pytest.approx(1.0)

    def test_max_vs_min(self):
        # Two actions: risky (p=0.9 goal) and safe avoidance loop.
        m = MDP()
        s0 = m.add_state()
        goal = m.add_state()
        sink = m.add_state()
        m.add_action(s0, [(0.9, goal), (0.1, sink)])
        m.add_action(s0, [(1.0, sink)])
        vmax = reachability_probability(m, {goal}, maximize=True)
        vmin = reachability_probability(m, {goal}, maximize=False)
        assert vmax[s0] == pytest.approx(0.9)
        assert vmin[s0] == pytest.approx(0.0)

    def test_two_step_geometric(self):
        # s0 -> s1 with 1/2, s1 -> goal with 1/3, else back to s0.
        m = MDP()
        s0, s1 = m.add_state(), m.add_state()
        goal = m.add_state()
        m.add_action(s0, [(0.5, s1), (0.5, s0)])
        m.add_action(s1, [(1 / 3, goal), (2 / 3, s0)])
        v = reachability_probability(m, {goal})
        assert v[s0] == pytest.approx(1.0)

    def test_interval_iteration_matches(self):
        m, s0, goal, fail = coin_chain(0.42)
        v = reachability_probability(m, {goal}, interval=True)
        assert v[s0] == pytest.approx(0.42, abs=1e-9)

    def test_empty_target(self):
        m, s0, goal, fail = coin_chain()
        v = reachability_probability(m, set())
        assert np.all(v == 0.0)


class TestRewards:
    def test_geometric_expected_tries(self):
        # Expected number of tries of a p-coin is 1/p.
        m, s0, goal = retry_chain(0.2)
        v = expected_total_reward(m, {goal})
        assert v[s0] == pytest.approx(5.0)

    def test_infinite_when_target_avoidable(self):
        m, s0, goal, fail = coin_chain(0.5)
        v = expected_total_reward(m, {goal}, maximize=True)
        assert np.isinf(v[s0])

    def test_min_reward_choice(self):
        # Short expensive path (reward 10) vs long cheap path (2 steps of
        # reward 1 with certainty).
        m = MDP()
        s0, mid = m.add_state(), m.add_state()
        goal = m.add_state()
        m.add_action(s0, [(1.0, goal)], reward=10.0)
        m.add_action(s0, [(1.0, mid)], reward=1.0)
        m.add_action(mid, [(1.0, goal)], reward=1.0)
        vmin = expected_total_reward(m, {goal}, maximize=False)
        vmax = expected_total_reward(m, {goal}, maximize=True)
        assert vmin[s0] == pytest.approx(2.0)
        assert vmax[s0] == pytest.approx(10.0)

    def test_min_reward_does_not_hide_in_free_cycle(self):
        # A zero-reward cycle that never reaches the target must not
        # lure the minimiser into reporting 0: a scheduler that enters
        # the cycle has expected reward infinity (it misses the target),
        # so Rmin(s0) is the cost of the honest path, 5 -- and the cycle
        # state itself is infinite.
        m = MDP()
        s0 = m.add_state()
        loop = m.add_state()
        goal = m.add_state()
        m.add_action(s0, [(1.0, goal)], reward=5.0)
        m.add_action(s0, [(1.0, loop)], reward=0.0)
        m.add_action(loop, [(1.0, loop)], reward=0.0)
        v = expected_total_reward(m, {goal}, maximize=False)
        assert v[s0] == pytest.approx(5.0)
        assert np.isinf(v[loop])

    def test_expected_steps_chain(self):
        m = MDP()
        states = [m.add_state() for _ in range(4)]
        goal = m.add_state()
        chain = states + [goal]
        for a, b in zip(chain, chain[1:]):
            m.add_action(a, [(1.0, b)], reward=1.0)
        v = expected_total_reward(m, {goal})
        assert v[states[0]] == pytest.approx(4.0)


class TestBounded:
    def test_chain_needs_enough_steps(self):
        m = MDP()
        s0, s1 = m.add_state(), m.add_state()
        goal = m.add_state()
        m.add_action(s0, [(1.0, s1)])
        m.add_action(s1, [(1.0, goal)])
        assert bounded_reachability(m, {goal}, 1)[s0] == 0.0
        assert bounded_reachability(m, {goal}, 2)[s0] == 1.0

    def test_geometric_partial_sums(self):
        m, s0, goal = retry_chain(0.5)
        v3 = bounded_reachability(m, {goal}, 3)[s0]
        assert v3 == pytest.approx(1 - 0.5 ** 3)

    def test_bounded_below_unbounded(self):
        m, s0, goal = retry_chain(0.3)
        bounded = bounded_reachability(m, {goal}, 5)[s0]
        unbounded = reachability_probability(m, {goal})[s0]
        assert bounded <= unbounded + 1e-12


# -- property-based: random DTMCs ----------------------------------------------

@st.composite
def random_dtmc(draw):
    n = draw(st.integers(min_value=2, max_value=6))
    m = MDP()
    for _ in range(n):
        m.add_state()
    for s in range(n):
        succs = draw(st.lists(st.integers(0, n - 1), min_size=1,
                              max_size=3))
        weights = draw(st.lists(st.integers(1, 5), min_size=len(succs),
                                max_size=len(succs)))
        total = sum(weights)
        m.add_action(s, [(w / total, t) for w, t in zip(weights, succs)])
    target = draw(st.integers(0, n - 1))
    return m, target


@settings(max_examples=100, deadline=None)
@given(random_dtmc())
def test_probabilities_in_unit_interval(case):
    m, target = case
    v = reachability_probability(m, {target})
    assert np.all(v >= -1e-12) and np.all(v <= 1 + 1e-12)
    assert v[target] == pytest.approx(1.0)


@settings(max_examples=100, deadline=None)
@given(random_dtmc())
def test_max_at_least_min(case):
    m, target = case
    vmax = reachability_probability(m, {target}, maximize=True)
    vmin = reachability_probability(m, {target}, maximize=False)
    assert np.all(vmax >= vmin - 1e-9)


@settings(max_examples=60, deadline=None)
@given(random_dtmc(), st.integers(0, 6))
def test_bounded_monotone_in_steps(case, k):
    m, target = case
    a = bounded_reachability(m, {target}, k)
    b = bounded_reachability(m, {target}, k + 1)
    assert np.all(b >= a - 1e-12)


@settings(max_examples=100, deadline=None)
@given(random_dtmc())
def test_precomputation_consistent_with_values(case):
    m, target = case
    v = reachability_probability(m, {target})
    m.finalize()
    for s in prob0_max(m, {target}):
        assert v[s] == 0.0
    for s in prob1_max(m, {target}):
        assert v[s] == pytest.approx(1.0)
