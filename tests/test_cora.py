"""Tests for priced timed automata and min-cost reachability."""

import pytest

from repro.cora import PricedTA, min_cost_reachability
from repro.core import ModelError
from repro.ta import Automaton, Network, clk


def single(automaton):
    net = Network()
    net.add_process("P", automaton)
    return net


def goal(location):
    return lambda names, v, c: names[0] == location


class TestPricedTA:
    def test_unknown_location(self):
        a = Automaton("A", clocks=[])
        a.add_location("s")
        priced = PricedTA(single(a))
        with pytest.raises(ModelError):
            priced.set_rate("P", "nowhere", 1)

    def test_negative_prices_rejected(self):
        a = Automaton("A", clocks=[])
        a.add_location("s")
        e = a.add_edge("s", "s")
        priced = PricedTA(single(a))
        with pytest.raises(ModelError):
            priced.set_rate("P", "s", -1)
        with pytest.raises(ModelError):
            priced.set_edge_cost(e, -1)


class TestMinCost:
    def test_pure_edge_costs_pick_cheap_path(self):
        a = Automaton("A", clocks=[])
        a.add_location("s")
        a.add_location("mid")
        a.add_location("goal")
        expensive = a.add_edge("s", "goal")
        step1 = a.add_edge("s", "mid")
        step2 = a.add_edge("mid", "goal")
        priced = PricedTA(single(a))
        priced.set_edge_cost(expensive, 10)
        priced.set_edge_cost(step1, 2)
        priced.set_edge_cost(step2, 3)
        result = min_cost_reachability(priced, goal("goal"))
        assert result.cost == 5
        assert len(result.trace) == 2

    def test_time_costs_favour_cheap_waiting_location(self):
        """Classic priced-TA example: wait 4 time units before the goal
        edge; waiting in `cheap` costs 1/t.u., in `dear` 5/t.u."""
        a = Automaton("A", clocks=["x"])
        a.add_location("dear")
        a.add_location("cheap")
        a.add_location("goal")
        a.add_edge("dear", "cheap")
        a.add_edge("dear", "goal", guard=[clk("x", ">=", 4)])
        a.add_edge("cheap", "goal", guard=[clk("x", ">=", 4)])
        priced = PricedTA(single(a))
        priced.set_rate("P", "dear", 5)
        priced.set_rate("P", "cheap", 1)
        result = min_cost_reachability(priced, goal("goal"))
        # Move to cheap immediately and wait there: 4 * 1 = 4.
        assert result.cost == 4

    def test_tradeoff_between_rate_and_edge_cost(self):
        """Switching to the cheap location costs 3: worth it only
        because 4 t.u. of waiting saves 4 * (5-1) = 16."""
        a = Automaton("A", clocks=["x"])
        a.add_location("dear")
        a.add_location("cheap")
        a.add_location("goal")
        switch = a.add_edge("dear", "cheap")
        a.add_edge("dear", "goal", guard=[clk("x", ">=", 4)])
        a.add_edge("cheap", "goal", guard=[clk("x", ">=", 4)])
        priced = PricedTA(single(a))
        priced.set_rate("P", "dear", 5)
        priced.set_rate("P", "cheap", 1)
        priced.set_edge_cost(switch, 3)
        result = min_cost_reachability(priced, goal("goal"))
        assert result.cost == 7  # 3 + 4*1, beating 4*5 = 20

    def test_unreachable_goal(self):
        a = Automaton("A", clocks=[])
        a.add_location("s")
        a.add_location("island")
        priced = PricedTA(single(a))
        result = min_cost_reachability(priced, goal("island"))
        assert result.cost is None
        assert not result

    def test_cost_respects_invariant_deadline(self):
        """The invariant forces leaving by x == 2, so the run cannot
        dodge the expensive rate by waiting elsewhere."""
        a = Automaton("A", clocks=["x"])
        a.add_location("s", invariant=[clk("x", "<=", 2)])
        a.add_location("goal")
        a.add_edge("s", "goal", guard=[clk("x", ">=", 2)])
        priced = PricedTA(single(a))
        priced.set_rate("P", "s", 3)
        result = min_cost_reachability(priced, goal("goal"))
        assert result.cost == 6

    def test_zero_cost_when_no_prices(self):
        a = Automaton("A", clocks=["x"])
        a.add_location("s")
        a.add_location("goal")
        a.add_edge("s", "goal", guard=[clk("x", ">=", 3)])
        priced = PricedTA(single(a))
        result = min_cost_reachability(priced, goal("goal"))
        assert result.cost == 0

    def test_wcet_style_longest_shortest_path(self):
        """A two-task pipeline where the cost counts execution time:
        the cheapest schedule is the sum of the best-case times."""
        task = Automaton("T", clocks=["x"])
        task.add_location("run1", invariant=[clk("x", "<=", 5)])
        task.add_location("run2", invariant=[clk("x", "<=", 9)])
        task.add_location("done")
        task.add_edge("run1", "run2", guard=[clk("x", ">=", 2)],
                      resets=[("x", 0)])
        task.add_edge("run2", "done", guard=[clk("x", ">=", 3)])
        priced = PricedTA(single(task))
        priced.set_rate("P", "run1", 1)
        priced.set_rate("P", "run2", 1)
        result = min_cost_reachability(priced, goal("done"))
        assert result.cost == 5  # BCET: 2 + 3
