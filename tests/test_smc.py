"""Tests for the statistical model checking package."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AnalysisError, RandomSource
from repro.models.traingate import make_traingate
from repro.smc import (
    FirstPassageRecorder,
    MeanEstimate,
    ProbabilityEstimate,
    StochasticSimulator,
    chernoff_runs,
    empirical_cdf,
    estimate_mean,
    estimate_probability,
    first_passage_cdfs,
    sprt,
)
from repro.ta import Automaton, Network, clk


def one_shot():
    """One edge enabled in x within [2, 5] under invariant x <= 5."""
    a = Automaton("A", clocks=["x"])
    a.add_location("s", invariant=[clk("x", "<=", 5)])
    a.add_location("t")
    a.add_edge("s", "t", guard=[clk("x", ">=", 2)], resets=[("x", 0)])
    net = Network()
    net.add_process("P", a)
    return net.freeze()


class TestStochasticSimulator:
    def test_uniform_delay_within_window(self):
        sim = StochasticSimulator(one_shot(), rng=5)
        for _ in range(50):
            delay, _desc, state = sim.step(sim.initial())
            assert 0 <= delay <= 5
            assert sim.network.location_vector_names(state.locs) == ("t",)

    def test_delay_distribution_is_uniform_over_invariant(self):
        # UPPAAL-SMC picks uniformly over [lower-bound, invariant].
        sim = StochasticSimulator(one_shot(), rng=6)
        delays = [sim.step(sim.initial())[0] for _ in range(600)]
        mean = sum(delays) / len(delays)
        # Uniform over [2, 5] has mean 3.5.
        assert 3.2 < mean < 3.8

    def test_exponential_when_no_invariant(self):
        a = Automaton("A", clocks=["x"])
        a.add_location("s", rate=2.0)
        a.add_location("t")
        a.add_edge("s", "t")
        net = Network()
        net.add_process("P", a)
        sim = StochasticSimulator(net, rng=7)
        delays = [sim.step(sim.initial())[0] for _ in range(800)]
        mean = sum(delays) / len(delays)
        assert 0.4 < mean < 0.6  # Exp(2) has mean 0.5

    def test_race_prefers_faster_component(self):
        fast = Automaton("F", clocks=[])
        fast.add_location("s", rate=50.0)
        fast.add_location("t")
        fast.add_edge("s", "t")
        slow = Automaton("S", clocks=[])
        slow.add_location("s", rate=0.02)
        slow.add_location("t")
        slow.add_edge("s", "t")
        net = Network()
        net.add_process("F", fast)
        net.add_process("S", slow)
        sim = StochasticSimulator(net, rng=8)
        fast_wins = 0
        for _ in range(100):
            _d, _desc, state = sim.step(sim.initial())
            if sim.network.location_vector_names(state.locs)[0] == "t":
                fast_wins += 1
        assert fast_wins > 95

    def test_run_horizon(self):
        sim = StochasticSimulator(one_shot(), rng=9)
        # After reaching t (no outgoing edges) the run stops.
        elapsed = sim.run(max_time=100)
        assert elapsed <= 5

    def test_observer_sees_initial_state(self):
        seen = []
        sim = StochasticSimulator(one_shot(), rng=10)
        sim.run(max_time=1,
                observer=lambda t, names, v, c: seen.append(names[0]))
        assert seen[0] == "s"

    def test_committed_fires_instantly(self):
        a = Automaton("A", clocks=["x"])
        a.add_location("c", committed=True)
        a.add_location("t")
        a.add_edge("c", "t")
        net = Network()
        net.add_process("P", a)
        sim = StochasticSimulator(net, rng=11)
        delay, _desc, _state = sim.step(sim.initial())
        assert delay == 0.0

    def test_traingate_run_is_safe(self):
        """SMC runs of the verified model never see two trains crossing."""
        net = make_traingate(3)
        sim = StochasticSimulator(net, rng=12)

        def check(t, names, valuation, clocks):
            assert sum(1 for n in names[:3] if n == "Cross") <= 1

        for _ in range(5):
            sim.run(max_time=60, observer=check)


class TestEstimation:
    def test_probability_estimate_mean(self):
        e = ProbabilityEstimate(30, 100)
        assert e.mean == pytest.approx(0.3)
        assert e.low < 0.3 < e.high

    def test_extreme_counts(self):
        zero = ProbabilityEstimate(0, 50)
        assert zero.low == 0.0 and zero.mean == 0.0 and zero.high > 0.0
        full = ProbabilityEstimate(50, 50)
        assert full.high == 1.0 and full.low < 1.0

    def test_interval_shrinks_with_runs(self):
        small = ProbabilityEstimate(5, 10)
        large = ProbabilityEstimate(500, 1000)
        assert (large.high - large.low) < (small.high - small.low)

    def test_bernoulli_std(self):
        e = ProbabilityEstimate(3, 10000)
        assert e.std == pytest.approx(math.sqrt(3e-4 * (1 - 3e-4)))

    def test_estimate_probability_biased_coin(self):
        e = estimate_probability(lambda rng: rng.random() < 0.25,
                                 runs=2000, rng=13)
        assert e.low < 0.25 < e.high

    def test_mean_estimate(self):
        m = estimate_mean(lambda rng: rng.uniform(0, 10), runs=2000, rng=14)
        assert 4.5 < m.mean < 5.5
        lo, hi = m.interval()
        assert lo < m.mean < hi

    def test_mean_estimate_needs_samples(self):
        with pytest.raises(AnalysisError):
            MeanEstimate([])

    def test_chernoff_runs(self):
        # Classic figure: eps=0.05, delta=0.05 -> 738 runs.
        assert chernoff_runs(0.05, 0.05) == 738
        assert chernoff_runs(0.01, 0.05) > chernoff_runs(0.05, 0.05)

    def test_chernoff_validation(self):
        with pytest.raises(AnalysisError):
            chernoff_runs(0.0, 0.5)


class TestSPRT:
    def test_accepts_true_hypothesis(self):
        r = sprt(lambda rng: rng.random() < 0.9, theta=0.5,
                 indifference=0.05, rng=15)
        assert r.accept

    def test_rejects_false_hypothesis(self):
        r = sprt(lambda rng: rng.random() < 0.1, theta=0.5,
                 indifference=0.05, rng=16)
        assert not r.accept

    def test_needs_fewer_runs_far_from_threshold(self):
        near = sprt(lambda rng: rng.random() < 0.55, theta=0.5,
                    indifference=0.02, rng=17)
        far = sprt(lambda rng: rng.random() < 0.95, theta=0.5,
                   indifference=0.02, rng=18)
        assert far.runs < near.runs

    def test_indifference_validation(self):
        with pytest.raises(AnalysisError):
            sprt(lambda rng: True, theta=0.005, indifference=0.01)


class TestCDF:
    def test_empirical_cdf_basics(self):
        cdf = empirical_cdf([1, 2, 3, math.inf], [0, 1, 2, 3, 10])
        assert cdf == [0.0, 0.25, 0.5, 0.75, 0.75]

    def test_monotone(self):
        cdf = empirical_cdf([5, 3, 8, 1], list(range(10)))
        assert all(a <= b for a, b in zip(cdf, cdf[1:]))

    def test_recorder(self):
        rec = FirstPassageRecorder(
            {"x": lambda names, v, c: names[0] == "t"})
        rec(0.0, ("s",), None, None)
        assert math.isinf(rec.times["x"])
        rec(3.5, ("t",), None, None)
        assert rec.times["x"] == 3.5
        rec(9.9, ("t",), None, None)
        assert rec.times["x"] == 3.5  # first passage only
        assert rec.all_seen()

    def test_fig4_shape(self):
        """Faster trains (higher rate) cross earlier: CDFs ordered."""
        n = 3
        net = make_traingate(n)
        preds = {i: (lambda names, v, c, i=i: names[i] == "Cross")
                 for i in range(n)}
        grid = [20, 50, 90]
        cdfs = first_passage_cdfs(
            lambda rng: StochasticSimulator(net, rng=rng),
            preds, horizon=100, runs=150, grid=grid, rng=19)
        # At the horizon's end nearly every train crossed at least once.
        assert cdfs[n - 1][-1] > 0.8
        # The fastest train dominates the slowest early on.
        assert cdfs[n - 1][0] >= cdfs[0][0]


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=0, max_value=100), min_size=1,
                max_size=30),
       st.lists(st.floats(min_value=0, max_value=100), min_size=1,
                max_size=10))
def test_cdf_values_are_probabilities(samples, grid):
    cdf = empirical_cdf(samples, sorted(grid))
    assert all(0.0 <= p <= 1.0 for p in cdf)
    assert all(a <= b for a, b in zip(cdf, cdf[1:]))
