"""Cross-engine validation on randomly generated models.

The repository contains three independent semantics for timed automata
(zones, integer time, stochastic simulation) and two probabilistic
engines (exact MDP, simulation).  These property tests generate random
small models and check that the engines agree — the strongest internal
consistency evidence short of a mechanised proof.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mc import EF, LocationIs, Verifier
from repro.mdp import reachability_probability
from repro.pta import PTA, PTANetwork, build_digital_mdp, DigitalSimulator
from repro.ta import Automaton, DiscreteSemantics, Network, clk


# -- random closed single-clock automata ----------------------------------------

@st.composite
def random_closed_ta(draw):
    """A random closed, diagonal-free, single-clock automaton."""
    n_locs = draw(st.integers(min_value=2, max_value=5))
    automaton = Automaton("R", clocks=["x"])
    for i in range(n_locs):
        if draw(st.booleans()):
            bound = draw(st.integers(min_value=1, max_value=6))
            automaton.add_location(f"L{i}",
                                   invariant=[clk("x", "<=", bound)])
        else:
            automaton.add_location(f"L{i}")
    n_edges = draw(st.integers(min_value=1, max_value=7))
    for _ in range(n_edges):
        source = f"L{draw(st.integers(0, n_locs - 1))}"
        target = f"L{draw(st.integers(0, n_locs - 1))}"
        guard = []
        if draw(st.booleans()):
            op = draw(st.sampled_from([">=", "<="]))
            guard.append(clk("x", op, draw(st.integers(0, 6))))
        resets = [("x", 0)] if draw(st.booleans()) else []
        automaton.add_edge(source, target, guard=guard, resets=resets)
    return automaton


def reachable_locations_zone(automaton):
    network = Network()
    network.add_process("R", automaton)
    verifier = Verifier(network)
    out = set()
    for name in automaton.locations:
        if verifier.check(EF(LocationIs("R", name))).holds:
            out.add(name)
    return out


def reachable_locations_discrete(automaton):
    network = Network()
    network.add_process("R", automaton)
    semantics = DiscreteSemantics(network)
    initial = semantics.initial()
    seen = {initial.key()}
    out = set()
    queue = [initial]
    while queue:
        state = queue.pop()
        out.add(network.location_vector_names(state.locs)[0])
        for _step, succ in semantics.successors(state):
            if succ.key() not in seen:
                seen.add(succ.key())
                queue.append(succ)
    return out


@settings(max_examples=60, deadline=None)
@given(random_closed_ta())
def test_zone_and_discrete_reachability_agree(automaton):
    """For closed automata, integer time preserves location
    reachability (the soundness claim behind tiga/cora/tron)."""
    assert reachable_locations_zone(automaton) == \
        reachable_locations_discrete(automaton)


# -- random acyclic PTA: exact vs simulated probabilities -------------------------

@st.composite
def random_dag_pta(draw):
    """A layered PTA: probabilistic branching downward, no cycles."""
    layers = draw(st.integers(min_value=2, max_value=4))
    automaton = PTA("R", clocks=["x"])
    names = []
    for layer in range(layers):
        name = f"N{layer}"
        names.append(name)
        automaton.add_location(
            name, invariant=[clk("x", "<=", 1)] if layer < layers - 1
            else ())
    automaton.initial_location = names[0]
    for layer in range(layers - 1):
        weight = draw(st.integers(min_value=1, max_value=9))
        stay_target = names[layer + 1]
        skip_target = names[min(layer + 2, layers - 1)]
        automaton.add_prob_edge(
            names[layer],
            [(weight / 10, stay_target, [("x", 0)]),
             (1 - weight / 10, skip_target, [("x", 0)])],
            guard=[clk("x", ">=", 1)])
    return automaton, names[-1]


@settings(max_examples=20, deadline=None)
@given(random_dag_pta())
def test_digital_mdp_matches_simulation(case):
    automaton, final = case
    network = PTANetwork()
    network.add_process("R", automaton)
    digital = build_digital_mdp(network)
    exact = reachability_probability(
        digital.mdp, digital.location_states("R", final))[0]
    # The DAG always funnels into the last layer.
    assert exact == pytest.approx(1.0)
    simulator = DigitalSimulator(network, rng=9)
    run = simulator.run(
        stop=lambda names, v, c: names[0] == final)
    assert network.location_vector_names(run.final_state.locs)[0] == final


# -- the train gate under all engines ----------------------------------------------

class TestTrainGateCrossValidation:
    def test_smc_runs_respect_model_checked_safety(self):
        """5 random SMC runs never visit a state the model checker
        proved unreachable (two trains crossing)."""
        from repro.models.traingate import make_traingate
        from repro.smc import StochasticSimulator

        network = make_traingate(2)
        verifier = Verifier(network)
        assert not verifier.check(
            "E<> Train(0).Cross && Train(1).Cross").holds

        simulator = StochasticSimulator(network, rng=5)

        def check(t, names, valuation, clocks):
            assert not (names[0] == "Cross" and names[1] == "Cross")

        for _ in range(5):
            simulator.run(max_time=80, observer=check)

    def test_discrete_and_zone_agree_on_traingate(self):
        from repro.models.traingate import make_traingate

        network = make_traingate(2)
        semantics = DiscreteSemantics(network)
        initial = semantics.initial()
        seen = {initial.key()}
        queue = [initial]
        crossing = set()
        while queue:
            state = queue.pop()
            names = network.location_vector_names(state.locs)
            crossing.add((names[0] == "Cross", names[1] == "Cross"))
            for _step, succ in semantics.successors(state):
                if succ.key() not in seen:
                    seen.add(succ.key())
                    queue.append(succ)
        assert (True, True) not in crossing
        assert (True, False) in crossing
