"""Tests for the observability layer (:mod:`repro.obs`).

Covers the registry primitives (counters, gauges, histograms, merge),
hierarchical tracing and its Chrome-trace export, progress heartbeats,
the schema-versioned report, the engine instrumentation hooks — and the
acceptance criterion: a parallel SMC run reports logical engine totals
identical to the serial run on the Fig. 4 train-gate workload.
"""

import json
import threading

import pytest

from repro.mc import EF, LocationIs, Verifier, explore, trace_stats
from repro.models.traingate import cross_predicate, make_traingate
from repro.obs import (
    Collector,
    ProgressEvent,
    Tracer,
    active,
    active_tracer,
    collecting,
    heartbeat,
    incr,
    observe,
    progress,
    set_gauge,
    span,
    timed,
    tracing,
)
from repro.obs.report import SCHEMA_VERSION, Report, check_files, validate
from repro.obs.trace import NULL_SPAN
from repro.runtime import ParallelExecutor, SerialExecutor, Spec
from repro.smc import probability_estimate
from repro.ta import ZoneGraph

TRAINGATE = Spec(make_traingate, 3)
CROSS0 = Spec(cross_predicate, 0)


@pytest.fixture(scope="module")
def pool2():
    with ParallelExecutor(workers=2) as executor:
        yield executor


class TestCollector:
    def test_counters_gauges_histograms(self):
        c = Collector("t")
        c.incr("a.count")
        c.incr("a.count", 4)
        c.set_gauge("a.gauge", 7)
        c.set_gauge("a.gauge", 3)
        c.observe("a.h", 1.0)
        c.observe("a.h", 3.0)
        assert c.value("a.count") == 5
        assert c.value("a.gauge") == 3
        assert c.value("missing", default=-1) == -1
        snap = c.snapshot()
        assert snap["counters"] == {"a.count": 5}
        assert snap["gauges"] == {"a.gauge": 3}
        h = snap["histograms"]["a.h"]
        assert (h["count"], h["total"], h["min"], h["max"]) == \
            (2, 4.0, 1.0, 3.0)

    def test_snapshot_is_json_ready(self):
        c = Collector()
        c.incr("x")
        c.observe("y", 2.5)
        json.dumps(c.snapshot())  # must not raise

    def test_empty_histogram_snapshot_has_null_bounds(self):
        c = Collector()
        with c.timer("t.h"):
            pass
        snap = c.snapshot()["histograms"]["t.h"]
        assert snap["count"] == 1 and snap["min"] is not None
        d = Collector()
        d.merge({"histograms": {"z": {"count": 0, "total": 0.0,
                                      "min": None, "max": None}}})
        assert d.snapshot()["histograms"]["z"]["min"] is None

    def test_merge_adds_counters_and_histograms(self):
        a, b = Collector("a"), Collector("b")
        a.incr("n", 2)
        b.incr("n", 3)
        b.incr("only_b")
        a.observe("h", 1.0)
        b.observe("h", 5.0)
        a.set_gauge("g", 1)
        b.set_gauge("g", 9)
        a.merge(b)
        assert a.value("n") == 5
        assert a.value("only_b") == 1
        assert a.value("g") == 9  # gauges: last write wins
        h = a.snapshot()["histograms"]["h"]
        assert (h["count"], h["min"], h["max"]) == (2, 1.0, 5.0)

    def test_merge_accepts_snapshots(self):
        a = Collector()
        b = Collector()
        b.incr("n", 7)
        a.merge(b.snapshot())
        assert a.value("n") == 7

    def test_max_gauge_keeps_and_merges_maximum(self):
        c = Collector()
        c.set_max("obs.rss_peak_kb", 500)
        c.set_max("obs.rss_peak_kb", 300)   # lower write is ignored
        assert c.value("obs.rss_peak_kb") == 500
        other = Collector()
        other.set_max("obs.rss_peak_kb", 900)
        other.set_max("obs.only_other", 1)
        c.merge(other)
        # max-merge, not last-write: the peak survives merge order.
        assert c.value("obs.rss_peak_kb") == 900
        assert c.value("obs.only_other") == 1
        c.merge({"max_gauges": {"obs.rss_peak_kb": 700}})
        assert c.snapshot()["max_gauges"]["obs.rss_peak_kb"] == 900

    def test_clear(self):
        c = Collector()
        c.incr("n")
        c.set_max("m", 2)
        c.clear()
        assert c.snapshot() == {"counters": {}, "gauges": {},
                                "max_gauges": {}, "histograms": {}}

    def test_thread_safety(self):
        c = Collector()

        def work():
            for _ in range(1000):
                c.incr("n")
                c.observe("h", 1.0)

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value("n") == 8000
        assert c.snapshot()["histograms"]["h"]["count"] == 8000


class TestAmbientCollector:
    def test_off_by_default(self):
        assert active() is None
        incr("nobody.listening")      # all no-ops, must not raise
        set_gauge("nobody.gauge", 1)
        observe("nobody.h", 1.0)
        with timed("nobody.timer"):
            pass

    def test_collecting_installs_and_restores(self):
        with collecting() as c:
            assert active() is c
            incr("seen")
            with collecting() as inner:
                assert active() is inner
                incr("inner_only")
            assert active() is c
        assert active() is None
        assert c.value("seen") == 1
        assert c.value("inner_only") == 0

    def test_module_helpers_record(self):
        with collecting() as c:
            incr("m.count", 2)
            set_gauge("m.gauge", 5)
            observe("m.h", 1.5)
            with timed("m.timer"):
                pass
        assert c.value("m.count") == 2
        assert c.value("m.gauge") == 5
        assert c.snapshot()["histograms"]["m.timer"]["count"] == 1


class TestTracing:
    def test_off_by_default_yields_null_span(self):
        assert active_tracer() is None
        with span("anything", key=1) as sp:
            assert sp is NULL_SPAN
            sp.set("ignored", 2)  # no-op

    def test_nesting_and_attributes(self):
        with tracing() as tracer:
            with span("outer", model="tg") as outer:
                with span("inner") as inner:
                    inner.set("states", 4)
                outer.set("verdict", True)
        assert len(tracer.roots) == 1
        root = tracer.roots[0]
        assert root.name == "outer"
        assert root.attributes == {"model": "tg", "verdict": True}
        assert [c.name for c in root.children] == ["inner"]
        assert root.children[0].attributes == {"states": 4}
        assert root.end is not None
        assert root.duration >= root.children[0].duration

    def test_to_dict_roundtrips_through_json(self):
        with tracing() as tracer:
            with span("a"):
                with span("b", n=1):
                    pass
        data = json.loads(json.dumps(tracer.to_dict()))
        assert data[0]["name"] == "a"
        assert data[0]["children"][0]["attributes"] == {"n": 1}

    def test_chrome_trace_export(self):
        with tracing() as tracer:
            with span("mc.check", query="EF", obj=object()):
                pass
        chrome = tracer.to_chrome_trace()
        assert chrome["displayTimeUnit"] == "ms"
        event, = chrome["traceEvents"]
        assert event["ph"] == "X"
        assert event["cat"] == "mc"
        assert event["ts"] >= 0 and event["dur"] >= 0
        assert event["args"]["query"] == "EF"
        assert isinstance(event["args"]["obj"], str)  # repr()'d
        json.dumps(chrome)


class TestProgress:
    def test_no_sink_returns_none(self):
        assert heartbeat("x", 1) is None

    def test_delivery_and_event_fields(self):
        events = []
        with progress(events.append, min_interval=0.0):
            event = heartbeat("smc", 50, total=200, extra="y")
        assert events == [event]
        assert isinstance(event, ProgressEvent)
        assert (event.kind, event.done, event.total) == ("smc", 50, 200)
        assert event.rate > 0 and event.eta is not None
        assert event.info == {"extra": "y"}

    def test_open_ended_has_no_eta(self):
        with progress(lambda e: None, min_interval=0.0):
            event = heartbeat("bfs", 10)
        assert event.total is None and event.eta is None

    def test_rate_limiting_and_force(self):
        events = []
        with progress(events.append, min_interval=3600.0):
            assert heartbeat("x", 1) is not None   # first one passes
            assert heartbeat("x", 2) is None       # rate-limited
            assert heartbeat("x", 3, force=True) is not None
        assert [e.done for e in events] == [1, 3]


class TestReport:
    def test_schema_and_validate(self):
        c = Collector()
        c.incr("mc.states_explored", 3)
        data = Report(c, meta={"k": "v"}).to_dict()
        assert data["schema"] == SCHEMA_VERSION
        assert data["meta"] == {"k": "v"}
        assert data["metrics"]["counters"]["mc.states_explored"] == 3
        assert validate(data) is data

    def test_validate_rejects_bad_reports(self):
        with pytest.raises(ValueError, match="missing the 'schema'"):
            validate({"metrics": {}})
        with pytest.raises(ValueError, match="unsupported report schema"):
            validate({"schema": "repro.obs/0", "metrics": {}})
        with pytest.raises(ValueError, match="no 'metrics'"):
            validate({"schema": SCHEMA_VERSION})
        with pytest.raises(ValueError, match="not a report"):
            validate([1, 2])

    def test_write_and_check_files(self, tmp_path):
        good = tmp_path / "good.json"
        Report(Collector()).write(str(good))
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"no": "schema"}))
        assert check_files([str(good)]) == 0
        assert check_files([str(good), str(bad)]) == 1
        assert check_files([str(tmp_path / "missing.json")]) == 1

    def test_trace_included_when_tracer_given(self):
        with tracing() as tracer:
            with span("s"):
                pass
        data = Report(Collector(), tracer).to_dict()
        assert data["trace"][0]["name"] == "s"
        assert data["chrome_trace"]["traceEvents"]

    def test_tables_group_by_namespace(self):
        c = Collector()
        c.incr("mc.states_explored", 10)
        c.incr("smc.runs", 5)
        c.observe("runtime.task_seconds", 0.25)
        tables = Report(c).tables()
        titles = [t.title for t in tables]
        assert "[mc] metrics" in titles
        assert "[smc] metrics" in titles
        assert "timing / size distributions" in titles


class TestEngineInstrumentation:
    def test_mc_exploration_records_counts(self):
        network = make_traingate(2)
        with collecting() as c, tracing() as tracer:
            graph = ZoneGraph(network)
            result = explore(graph)
        assert c.value("mc.searches") == 1
        assert c.value("mc.states_explored") == result.states_explored
        assert c.value("mc.states_stored") == result.states_stored
        assert c.value("mc.zones_created") > 0
        assert c.value("mc.dbm_constraints") > 0
        root, = tracer.roots
        assert root.name == "mc.explore"
        assert root.attributes["states_explored"] == \
            result.states_explored

    def test_mc_query_span_and_counters(self):
        with collecting() as c, tracing() as tracer:
            verifier = Verifier(make_traingate(2))
            result = verifier.check(EF(LocationIs("Train(0)", "Cross")))
        assert result.holds
        assert c.value("mc.queries") == 1
        assert c.value("mc.queries.satisfied") == 1
        check = tracer.roots[0]
        assert check.name == "mc.check"
        assert check.attributes["query"] == "EF"
        assert check.attributes["holds"] is True

    def test_trace_stats_uses_registry(self):
        verifier = Verifier(make_traingate(2))
        result = verifier.check(EF(LocationIs("Train(0)", "Cross")))
        with collecting() as c:
            stats = trace_stats(result.trace)
        assert stats["states"] == len(result.trace)
        assert c.value("mc.traces_rendered") == 1
        assert c.value("mc.trace_steps") == stats["steps"]

    def test_smc_estimate_records_runs(self):
        with collecting() as c:
            estimate = probability_estimate(
                make_traingate(2), cross_predicate(0), horizon=100,
                runs=20, rng=1)
        assert c.value("smc.runs") == 20
        assert c.value("smc.accepted") == estimate.successes
        assert c.value("smc.sim.runs") == 20
        assert c.value("smc.sim.steps") > 0

    def test_bip_engine_records_steps(self):
        from repro.bip import BIPEngine
        from repro.models.dala import make_dala

        with collecting() as c:
            engine = BIPEngine(make_dala(with_controller=True,
                                         counter_bound=4), rng=3)
            trace = engine.run(max_steps=100)
        assert c.value("bip.runs") == 1
        assert c.value("bip.steps") == len(trace.steps)
        assert c.value("bip.blocked") == trace.blocked_count

    def test_tiga_records_arena_and_fixpoint(self):
        from repro.models.traingame import (
            make_traingame,
            safety_predicate,
        )
        from repro.tiga import GameGraph, controller_wins_safety

        with collecting() as c:
            graph = GameGraph(make_traingame(1))
            wins, _strategy = controller_wins_safety(
                graph, safety_predicate(1))
        assert wins
        assert c.value("tiga.arena_states") == graph.num_states
        assert c.value("tiga.solves") == 1
        assert c.value("tiga.fixpoint_iterations") >= 1
        assert c.value("tiga.safety.winning_states") > 0

    def test_cora_records_search(self):
        from repro.cora import min_cost_reachability
        from repro.models.wcet import at_done, make_wcet_model

        with collecting() as c:
            result = min_cost_reachability(make_wcet_model(2), at_done)
        assert result
        assert c.value("cora.searches") == 1
        assert c.value("cora.states_explored") == result.states_explored
        assert c.value("cora.min_cost.found") == 1

    def test_modest_backends_record(self):
        from repro.models import brp_modest as bm
        from repro.modest.toolset import Pmax, mcpta, mctau, modes

        source = bm.brp_modest_source(2, 1, 1)
        props = [Pmax("P1", bm.not_success)]
        with collecting() as c:
            mctau(source, props)
            mcpta(source, props)
            modes(source, props, runs=10, rng=1, max_time=50)
        assert c.value("modest.mctau.properties") == 1
        assert c.value("modest.mcpta.properties") == 1
        assert c.value("modest.mcpta.states") > 0  # the MDP size gauge
        assert c.value("modest.modes.properties") == 1
        assert c.value("modest.modes.runs") == 10
        assert c.value("pta.sim.runs") == 10


def _logical(snapshot):
    """Engine counters only — ``runtime.*`` is the physical layer and
    legitimately differs between serial and parallel execution."""
    return {name: value
            for name, value in snapshot["counters"].items()
            if not name.startswith("runtime.")}


class TestParallelMetricsEquivalence:
    """The satellite acceptance test: ParallelExecutor merges per-worker
    collectors into totals identical to SerialExecutor's for the Fig. 4
    train-gate workload."""

    def test_traingate_parallel_totals_match_serial(self, pool2):
        kwargs = dict(horizon=100, runs=40, rng=42)
        with collecting() as serial_c:
            serial = probability_estimate(
                TRAINGATE, CROSS0, executor=SerialExecutor(), **kwargs)
        with collecting() as parallel_c:
            parallel = probability_estimate(
                TRAINGATE, CROSS0, executor=pool2, **kwargs)
        assert (parallel.successes, parallel.runs) == \
            (serial.successes, serial.runs)
        serial_logical = _logical(serial_c.snapshot())
        assert serial_logical == _logical(parallel_c.snapshot())
        assert serial_logical["smc.sim.runs"] == 40
        assert serial_logical["smc.runs"] == 40

    def test_runtime_layer_reports_workers(self, pool2):
        with collecting() as c:
            probability_estimate(TRAINGATE, CROSS0, horizon=100, runs=16,
                                 rng=42, executor=pool2)
        snap = c.snapshot()
        assert snap["gauges"]["runtime.workers"] == 2
        assert 1 <= snap["gauges"]["runtime.workers_seen"] <= 2
        assert snap["counters"]["runtime.tasks"] >= 1
        assert snap["histograms"]["runtime.task_seconds"]["count"] == \
            snap["counters"]["runtime.tasks"]


class TestDemoSession:
    def test_demo_session_report(self, tmp_path):
        from repro.obs.report import demo_session

        report = demo_session(trains=2, runs=20)
        data = report.to_dict()
        assert data["schema"] == SCHEMA_VERSION
        counters = data["metrics"]["counters"]
        assert counters["mc.states_explored"] > 0
        assert counters["smc.runs"] == 20
        names = [s["name"] for s in data["trace"]]
        assert names == ["session.mc", "session.smc"]
        path = tmp_path / "report.json"
        report.write(str(path))
        assert check_files([str(path)]) == 0
        titles = [t.title for t in report.tables()]
        assert any("[mc]" in t for t in titles)

class TestEwmaRate:
    """The EWMA instantaneous rate: follows recent throughput, while
    ``avg_rate`` stays the cumulative whole-run mean."""

    @staticmethod
    def fake_clock(times):
        values = iter(times)
        return lambda: next(values)

    def test_first_event_seeds_from_cumulative_average(self):
        events = []
        # started at t=0, sink ctor reads the clock once.
        clock = self.fake_clock([0.0, 10.0])
        with progress(events.append, min_interval=0.0, clock=clock):
            event = heartbeat("smc", 100, total=400)
        assert event.rate == pytest.approx(10.0)   # 100 done / 10 s
        assert event.rate == pytest.approx(event.avg_rate)
        assert event.eta == pytest.approx(30.0)

    def test_slowdown_pulls_rate_toward_recent_throughput(self):
        events = []
        # 100 units in the first second, then 1 unit per second.
        clock = self.fake_clock([0.0, 1.0, 2.0, 3.0, 4.0, 5.0])
        with progress(events.append, min_interval=0.0, clock=clock):
            for done in (100, 101, 102, 103, 104):
                heartbeat("smc", done, total=200)
        rates = [e.rate for e in events]
        assert rates[0] == pytest.approx(100.0)       # seeded
        assert rates[1] == pytest.approx(100.0 + 0.3 * (1.0 - 100.0))
        assert all(a > b for a, b in zip(rates, rates[1:]))  # decaying
        last = events[-1]
        # eta is driven by the EWMA rate, not the cumulative average
        assert last.eta == pytest.approx((200 - 104) / last.rate)
        assert last.avg_rate == pytest.approx(104 / 5.0)
        assert last.rate != pytest.approx(last.avg_rate)

    def test_done_decrease_resets_the_ewma(self):
        events = []
        clock = self.fake_clock([0.0, 1.0, 2.0])
        with progress(events.append, min_interval=0.0, clock=clock):
            heartbeat("smc", 100)
            event = heartbeat("smc", 30)    # a second analysis restarted
        assert event.rate == pytest.approx(event.avg_rate)
        assert event.rate == pytest.approx(15.0)   # 30 done / 2 s elapsed

    def test_kinds_track_independent_rates(self):
        events = []
        clock = self.fake_clock([0.0, 1.0, 1.0])
        with progress(events.append, min_interval=0.0, clock=clock):
            fast = heartbeat("smc", 1000)
            slow = heartbeat("mc", 10)
        assert fast.rate == pytest.approx(1000.0)
        assert slow.rate == pytest.approx(10.0)


class TestResources:
    """Fallback branches of :mod:`repro.obs.resources`."""

    def test_rss_peak_falls_back_to_getrusage(self, monkeypatch):
        from repro.obs import resources

        monkeypatch.setattr(resources, "_proc_status_kb",
                            lambda field: None)
        peak = resources.rss_peak_kb()
        assert peak is None or peak > 0  # getrusage path (or no API)

    def test_rss_kb_none_without_proc(self, monkeypatch):
        from repro.obs import resources

        monkeypatch.setattr(resources, "_proc_status_kb",
                            lambda field: None)
        assert resources.rss_kb() is None
        readings = resources.sample(Collector())
        assert "obs.rss_kb" not in readings
        assert "obs.gc_collections" in readings

    def test_heap_tracing_records_heap_gauges(self):
        import tracemalloc

        from repro.obs.resources import heap_tracing

        c = Collector()
        with heap_tracing(c):
            data = [object() for _ in range(1000)]
        del data
        assert not tracemalloc.is_tracing()
        assert c.value("obs.heap_peak_kb") >= 0

    def test_heap_tracing_nests_without_stopping_outer(self):
        import tracemalloc

        from repro.obs.resources import heap_tracing

        with heap_tracing():
            assert tracemalloc.is_tracing()
            with heap_tracing():               # nested / double enable
                assert tracemalloc.is_tracing()
            # inner exit must leave the outer window tracing
            assert tracemalloc.is_tracing()
        assert not tracemalloc.is_tracing()


def _store_with_runs(tmp_path, labels):
    """A run store with one record per label occurrence, plus one
    foreign line in the middle."""
    from repro.obs.runstore import RunStore

    path = tmp_path / "runs.jsonl"
    store = RunStore(str(path))
    half = len(labels) // 2
    for index, label in enumerate(labels):
        if index == half:
            with open(path, "a", encoding="utf-8") as handle:
                handle.write('{"foreign": "line"}\n')
        c = Collector()
        c.incr("smc.runs", index)
        store.append(Report(c, meta={"i": index}), label)
    return store, path


class TestRunStorePrune:
    def test_prune_keeps_newest_per_label(self, tmp_path):
        store, path = _store_with_runs(
            tmp_path, ["a", "b", "a", "a", "b", "a"])
        kept, removed = store.prune(keep=2)
        assert (kept, removed) == (4, 2)
        a_runs = list(store.records(label="a"))
        assert [r["run_id"] for r in a_runs] == ["a#3", "a#4"]
        assert len(list(store.records(label="b"))) == 2
        # the foreign line survives the rewrite verbatim
        assert '{"foreign": "line"}' in path.read_text()
        assert store.scan()[1] == 1  # still counted as skipped

    def test_prune_single_label_leaves_others(self, tmp_path):
        store, _path = _store_with_runs(tmp_path, ["a", "a", "a", "b"])
        kept, removed = store.prune(keep=1, label="a")
        assert (kept, removed) == (2, 2)
        assert len(list(store.records(label="a"))) == 1
        assert len(list(store.records(label="b"))) == 1

    def test_prune_noop_and_bad_keep(self, tmp_path):
        store, path = _store_with_runs(tmp_path, ["a", "b"])
        before = path.read_text()
        assert store.prune(keep=5) == (2, 0)
        assert path.read_text() == before  # no rewrite when nothing drops
        with pytest.raises(ValueError, match="at least 1"):
            store.prune(keep=0)
        from repro.obs.runstore import RunStore

        missing = RunStore(str(tmp_path / "missing.jsonl"))
        assert missing.prune(keep=1) == (0, 0)

    def test_pruned_store_passes_check(self, tmp_path):
        store, path = _store_with_runs(tmp_path, ["a"] * 4)
        store.prune(keep=2)
        # the foreign line is reported, valid records still count
        from repro.obs.report import _check_one

        with pytest.raises(ValueError, match="1 invalid line"):
            _check_one(str(path))


class TestHistoryCli:
    def test_history_lists_labels_and_skipped(self, tmp_path, capsys):
        from repro.obs.report import main

        _store, path = _store_with_runs(tmp_path, ["a", "a", "b"])
        assert main(["history", str(path)]) == 0
        out = capsys.readouterr().out
        assert "a: 2 run(s), newest a#2" in out
        assert "b: 1 run(s), newest b#1" in out
        assert "1 unparseable/foreign line(s) skipped" in out

    def test_history_prune_compacts(self, tmp_path, capsys):
        from repro.obs.report import main
        from repro.obs.runstore import RunStore

        _store, path = _store_with_runs(tmp_path, ["a"] * 5)
        assert main(["history", str(path), "--prune", "--keep", "2"]) == 0
        out = capsys.readouterr().out
        assert "removed 3 record(s), kept 2" in out
        assert len(list(RunStore(str(path)).records(label="a"))) == 2

    def test_history_label_filter(self, tmp_path, capsys):
        from repro.obs.report import main

        _store, path = _store_with_runs(tmp_path, ["a", "b"])
        assert main(["history", str(path), "--label", "zzz"]) == 0
        assert "no matching records" in capsys.readouterr().out


class TestCheckOneMultiError:
    def test_all_bad_lines_reported(self, tmp_path):
        from repro.obs.report import _check_one

        _store, path = _store_with_runs(tmp_path, ["a"])
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("not json at all\n")
            handle.write('{"schema": "repro.runs/1"}\n')
        with pytest.raises(ValueError) as err:
            _check_one(str(path))
        message = str(err.value)
        assert "3 invalid line(s)" in message
        assert "1 valid records would be kept" in message
        assert "not JSON" in message
