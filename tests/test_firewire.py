"""Tests for the FireWire root-contention model (the randomized
contention resolution the paper's Section III points at)."""

import pytest

from repro.mdp import expected_total_reward, reachability_probability
from repro.models import firewire
from repro.pta import build_digital_mdp


@pytest.fixture(scope="module")
def digital():
    return build_digital_mdp(firewire.make_firewire())


class TestTermination:
    def test_root_elected_almost_surely(self, digital):
        """The randomized scheme terminates with probability 1 under
        every adversary (min probability 1)."""
        target = digital.states_where(firewire.elected)
        vmin = reachability_probability(digital.mdp, target,
                                        maximize=False)
        vmax = reachability_probability(digital.mdp, target,
                                        maximize=True)
        assert vmin[0] == pytest.approx(1.0)
        assert vmax[0] == pytest.approx(1.0)

    def test_expected_time_is_finite_and_sane(self, digital):
        """Expected rounds = 2 (success probability 1/2); each round
        costs between FAST_MIN and SLOW_MAX time units."""
        target = digital.states_where(firewire.elected)
        emax = expected_total_reward(digital.mdp, target,
                                     maximize=True)[0]
        emin = expected_total_reward(digital.mdp, target,
                                     maximize=False)[0]
        assert emin <= emax
        assert firewire.FAST_MIN <= emin
        # Two expected rounds, each at most SLOW_MAX + election window.
        assert emax <= 4 * firewire.SLOW_MAX


class TestDeadline:
    def test_probability_grows_with_deadline(self):
        network = firewire.make_firewire(with_deadline_clock=True)
        watch = network.process_by_name("Watch")
        t_index = watch.resolve_clock("t")
        values = []
        for deadline in (2, 10, 25):
            digital = build_digital_mdp(
                network, extra_constants={t_index: 26})
            target = digital.states_where(
                firewire.elected_within(deadline, network))
            values.append(reachability_probability(
                digital.mdp, target, maximize=False)[0])
        assert values[0] <= values[1] <= values[2]
        assert values[2] > 0.8

    def test_immediate_deadline_may_fail(self):
        """Under the worst adversary (slowest delays) the election
        cannot complete immediately."""
        network = firewire.make_firewire(with_deadline_clock=True)
        watch = network.process_by_name("Watch")
        t_index = watch.resolve_clock("t")
        digital = build_digital_mdp(network,
                                    extra_constants={t_index: 26})
        target = digital.states_where(
            firewire.elected_within(0, network))
        value = reachability_probability(digital.mdp, target,
                                         maximize=False)[0]
        assert value == 0.0


class TestRoundProbabilities:
    def test_one_round_success_is_half(self):
        """Election without any retry has probability exactly 1/2 —
        check via a model whose clash states are absorbing."""
        network = firewire.make_firewire()
        digital = build_digital_mdp(network)
        # States that never passed through a retry: count instead via
        # bounded steps: one flip + waiting ticks + root edge.
        from repro.mdp import bounded_reachability

        target = digital.states_where(firewire.elected)
        # Enough steps for one round only (flip + <=2 ticks + root edge
        # all within FAST window; retry needs more).
        p_one_round = bounded_reachability(
            digital.mdp, target, firewire.FAST_MIN + 3,
            maximize=True)[0]
        assert p_one_round == pytest.approx(0.5)
