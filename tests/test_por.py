"""Tests for partial-order confluence checking (scheduler-free modes)."""

import pytest

from repro.core import AnalysisError, Assignment, Declarations, Var
from repro.pta import (
    DigitalSimulator,
    PTANetwork,
    check_confluent,
    independent,
)
from repro.ta import Automaton, discrete_transitions
from repro.ta.network import Network


def two_counters(shared=False, opaque=False):
    """Two looping processes; independent unless they share a variable
    or use opaque (callable) updates."""
    decls = Declarations()
    decls.declare_int("a", 0)
    decls.declare_int("b", 0)
    network = PTANetwork()
    network.declarations = decls
    for name, var in (("P", "a"), ("Q", "a" if shared else "b")):
        automaton = Automaton(name, clocks=[])
        automaton.add_location("s")
        if opaque:
            update = [lambda env, v=var: env.__setitem__(
                v, env[v] + 1)]
        else:
            update = [Assignment(var, Var(var) + 1)]
        automaton.add_edge("s", "s", update=update, label=f"inc_{name}")
        network.add_process(name, automaton)
    return network.freeze()


def enabled(network):
    return discrete_transitions(
        network, network.initial_locations(),
        network.initial_valuation())


class TestIndependence:
    def test_disjoint_processes_and_data(self):
        t1, t2 = enabled(two_counters(shared=False))
        assert independent(t1, t2)

    def test_shared_variable_dependent(self):
        t1, t2 = enabled(two_counters(shared=True))
        assert not independent(t1, t2)

    def test_opaque_updates_conservative(self):
        t1, t2 = enabled(two_counters(shared=False, opaque=True))
        assert not independent(t1, t2)

    def test_same_process_dependent(self):
        decls = Declarations()
        decls.declare_int("a", 0)
        network = Network()
        network.declarations = decls
        automaton = Automaton("P", clocks=[])
        automaton.add_location("s")
        automaton.add_location("t")
        automaton.add_edge("s", "t", update=[Assignment("a", 1)])
        automaton.add_edge("s", "s")
        network.add_process("P", automaton)
        network.freeze()
        t1, t2 = enabled(network)
        assert not independent(t1, t2)

    def test_check_confluent_raises_on_conflict(self):
        transitions = enabled(two_counters(shared=True))
        with pytest.raises(AnalysisError):
            check_confluent(transitions)

    def test_check_confluent_passes_independent(self):
        assert check_confluent(enabled(two_counters(shared=False)))


class TestPorPolicy:
    def test_confluent_model_simulates(self):
        simulator = DigitalSimulator(two_counters(shared=False),
                                     policy="por", rng=1)
        run = simulator.run(
            stop=lambda names, v, c: v["a"] >= 3 and v["b"] >= 3,
            max_steps=500)
        # Both counters advanced (order did not matter).
        assert run.final_state.valuation["a"] >= 3
        assert run.final_state.valuation["b"] >= 3

    def test_conflicting_model_aborts(self):
        simulator = DigitalSimulator(two_counters(shared=True),
                                     policy="por", rng=2)
        with pytest.raises(AnalysisError):
            simulator.run(max_steps=50)
