"""Tests for trace formatting and the MODEST XML export path."""

from repro.mc import EF, LocationIs, Verifier, format_state, format_trace
from repro.models.traingate import make_traingate
from repro.modest import to_uppaal_xml


FIG5 = """
const int TD = 1;
process Channel() {
  clock c;
  put palt {
  :98: {= c = 0 =}; invariant(c <= TD) get
  : 2: {==}
  }; Channel()
}
"""


class TestFormatTrace:
    def test_trace_lines(self):
        network = make_traingate(2)
        verifier = Verifier(network)
        result = verifier.check(EF(LocationIs("Train(0)", "Cross")))
        text = format_trace(network, result.trace)
        assert "(initial)" in text
        assert "Train(0).Cross" in text
        assert "appr_0!" in text

    def test_format_state_contents(self):
        network = make_traingate(2)
        verifier = Verifier(network)
        state = verifier.graph.initial()
        line = format_state(network, state)
        assert "Gate.Free" in line
        assert "len=0" in line
        assert "Train(0).x" in line

    def test_no_trace(self):
        assert format_trace(make_traingate(2), None) == "(no trace)"


class TestModestExport:
    def test_fig5_exports_to_uppaal(self):
        xml = to_uppaal_xml(FIG5, queries=["E<> Channel.L2"])
        assert "<nta>" in xml
        assert "clock c;" in xml
        assert "c &lt;= 1" in xml  # XML-escaped invariant
        assert "E&lt;&gt; Channel.L2" in xml or "E<> Channel.L2" in xml

    def test_probabilistic_edges_become_plain(self):
        xml = to_uppaal_xml(FIG5)
        # Two branches -> two transitions from the initial location.
        assert xml.count("<transition>") >= 3
