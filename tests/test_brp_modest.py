"""Tests for the MODEST-source BRP: the language pipeline end to end.

The two BRP models in this repository — the hand-built PTA network
(:mod:`repro.models.brp`) and the MODEST text
(:mod:`repro.models.brp_modest`) — implement the same protocol, so the
parser + flattener + digital-clocks chain must produce the same
numbers as the direct construction.
"""

import pytest

from repro.mdp import expected_total_reward, reachability_probability
from repro.models import brp
from repro.models import brp_modest as bm
from repro.modest import Emax, Pmax, mcpta, mctau, modes, parse_modest

Q_FRAME = (0.02 + 0.98 * 0.01) ** 3  # one frame exhausts 3 attempts


def closed_form_p1(n):
    return 1.0 - (1.0 - Q_FRAME) ** n


def closed_form_p2(n):
    return (1.0 - Q_FRAME) ** (n - 1) * Q_FRAME


class TestParsing:
    def test_source_parses(self):
        model = parse_modest(bm.brp_modest_source(4, 2, 1))
        assert set(model.processes) == {
            "Sender", "ChannelK", "Receiver", "ChannelL"}
        assert [c.name for c in model.composition] == [
            "Sender", "ChannelK", "Receiver", "ChannelL"]

    def test_flattening_creates_channels(self):
        network = bm.make_brp_modest(2, 1, 1)
        assert set(network.channels) == {
            "put_k", "frame_arrive", "put_l", "ack_arrive"}

    def test_channel_branch_probabilities(self):
        network = bm.make_brp_modest(2, 1, 1)
        channel_k = network.process_by_name("ChannelK").automaton
        [edge] = [e for e in channel_k.edges if hasattr(e, "branches")]
        assert edge.branches[0].probability == pytest.approx(0.98)
        channel_l = network.process_by_name("ChannelL").automaton
        [edge_l] = [e for e in channel_l.edges if hasattr(e, "branches")]
        assert edge_l.branches[0].probability == pytest.approx(0.99)


class TestAgainstClosedForm:
    @pytest.mark.parametrize("n", [1, 2, 4])
    def test_p1(self, n):
        result = mcpta(bm.make_brp_modest(n, 2, 1),
                       [Pmax("P1", bm.not_success)])
        assert result["P1"] == pytest.approx(closed_form_p1(n), rel=1e-9)

    def test_p2(self):
        result = mcpta(bm.make_brp_modest(4, 2, 1),
                       [Pmax("P2", bm.uncertainty)])
        assert result["P2"] == pytest.approx(closed_form_p2(4), rel=1e-9)

    def test_no_bogus_success(self):
        result = mcpta(bm.make_brp_modest(2, 1, 1),
                       [Pmax("PA", bm.bogus_success(2))])
        assert result["PA"] == 0.0


class TestAgainstPTAModel:
    """The MODEST text and the hand-built PTA must agree."""

    @pytest.mark.parametrize("n,max_retrans", [(2, 1), (4, 2)])
    def test_p1_agrees(self, n, max_retrans):
        modest_net = bm.make_brp_modest(n, max_retrans, 1)
        modest_p1 = mcpta(modest_net,
                          [Pmax("P1", bm.not_success)])["P1"]

        from repro.pta import build_digital_mdp

        pta_net = brp.make_brp(n, max_retrans, 1)
        digital = build_digital_mdp(pta_net)
        pta_p1 = reachability_probability(
            digital.mdp, digital.states_where(brp.not_success),
            maximize=True)[0]
        assert modest_p1 == pytest.approx(pta_p1, rel=1e-9)

    def test_emax_agrees(self):
        modest_net = bm.make_brp_modest(4, 2, 1)
        modest_emax = mcpta(modest_net,
                            [Emax("E", bm.reported)])["E"]

        from repro.pta import build_digital_mdp

        pta_net = brp.make_brp(4, 2, 1)
        digital = build_digital_mdp(pta_net)
        pta_emax = expected_total_reward(
            digital.mdp, digital.states_where(brp.reported),
            maximize=True)[0]
        assert modest_emax == pytest.approx(pta_emax, rel=1e-6)


class TestOtherBackends:
    def test_mctau_overapproximation(self):
        source = bm.brp_modest_source(2, 1, 1)
        results = mctau(source, [Pmax("PA", bm.bogus_success(2)),
                                 Pmax("P1", bm.not_success)])
        assert results["PA"] == 0.0       # unreachable: exactly zero
        assert results["P1"] != 0.0       # reachable: trivial interval

    def test_modes_simulation(self):
        results = modes(bm.brp_modest_source(2, 1, 1),
                        [Pmax("P1", bm.not_success),
                         Emax("E", bm.reported)],
                        runs=300, rng=6)
        assert results["P1"].mean < 0.05
        # Two frames at ~2.09 t.u. each under the max-delay scheduler.
        assert 3.5 < results["E"].mean < 5.0
