"""Tests for the UPPAAL XML importer, including export round-trips."""

import pytest

from repro.core import Declarations, ModelError, Var
from repro.export import export_network, import_network
from repro.mc import EF, LocationIs, Verifier
from repro.models.busspec import make_coffee_spec
from repro.ta import Automaton, Network, clk


def expr_model():
    """A two-process model using only Expr guards (fully exportable)."""
    ping = Automaton("Ping", clocks=["x"])
    ping.add_location("idle", invariant=[clk("x", "<=", 3)])
    ping.add_location("sent")
    ping.add_edge("idle", "sent", guard=[clk("x", ">=", 1)],
                  data_guard=Var("n") < 2, sync=("msg", "!"),
                  resets=[("x", 0)])
    pong = Automaton("Pong", clocks=[])
    pong.add_location("wait")
    pong.add_location("got", committed=True)
    pong.add_location("done")
    pong.add_edge("wait", "got", sync=("msg", "?"))
    pong.add_edge("got", "done")
    network = Network("pingpong")
    decls = Declarations()
    decls.declare_int("n", 0)
    decls.declare_bool("flag", True)
    decls.declare_array("arr", [1, 2])
    network.declarations = decls
    network.add_channel("msg")
    network.add_process("Ping", ping)
    network.add_process("Pong", pong)
    return network.freeze()


class TestRoundTrip:
    def test_structure_preserved(self):
        original = expr_model()
        imported = import_network(export_network(original))
        assert [p.name for p in imported.processes] == ["Ping", "Pong"]
        assert set(imported.channels) == {"msg"}
        assert imported.clock_names == ("Ping.x",)
        assert imported.initial_valuation()["n"] == 0
        assert imported.initial_valuation()["flag"] is True
        assert imported.initial_valuation()["arr"] == (1, 2)

    def test_verdicts_preserved(self):
        original = expr_model()
        imported = import_network(export_network(original))
        for network in (original, imported):
            verifier = Verifier(network)
            assert verifier.check(EF(LocationIs("Pong", "done"))).holds
            assert not verifier.check(
                EF(LocationIs("Ping", "idle")
                   & LocationIs("Pong", "done"))).holds

    def test_committed_preserved(self):
        imported = import_network(export_network(expr_model()))
        pong = imported.process_by_name("Pong")
        assert pong.automaton.locations["got"].committed

    def test_coffee_spec_roundtrip(self):
        original = make_coffee_spec()
        imported = import_network(export_network(original))
        machine = imported.process_by_name("M").automaton
        [brew_inv] = machine.locations["brewing"].invariant
        assert brew_inv.op == "<=" and brew_inv.bound == 4


class TestImportErrors:
    def test_rejects_non_nta(self):
        with pytest.raises(ModelError):
            import_network("<html></html>")

    def test_rejects_function_bodies(self):
        xml = export_network(expr_model()).replace(
            "<declaration>", "<declaration>void f() { }\n", 1)
        with pytest.raises(ModelError):
            import_network(xml)

    def test_rejects_data_invariant(self):
        original = export_network(expr_model())
        bad = original.replace("x &lt;= 3", "n &lt;= 3", 1)
        with pytest.raises(ModelError):
            import_network(bad)


class TestHandWrittenXml:
    XML = """<?xml version="1.0" encoding="utf-8"?>
<nta>
  <declaration>chan go;
int count = 0;</declaration>
  <template>
    <name>T</name>
    <declaration>clock c;</declaration>
    <location id="a"><name>start</name>
      <label kind="invariant">c &lt;= 5</label></location>
    <location id="b"><name>end</name></location>
    <init ref="a"/>
    <transition>
      <source ref="a"/><target ref="b"/>
      <label kind="guard">c &gt;= 2 &amp;&amp; count == 0</label>
      <label kind="synchronisation">go!</label>
      <label kind="assignment">c = 0, count = count + 1</label>
    </transition>
  </template>
  <template>
    <name>R</name>
    <location id="r0"><name>w</name></location>
    <location id="r1"><name>h</name></location>
    <init ref="r0"/>
    <transition>
      <source ref="r0"/><target ref="r1"/>
      <label kind="synchronisation">go?</label>
    </transition>
  </template>
  <system>T = T(); R = R();
system T, R;</system>
</nta>
"""

    def test_imports_and_verifies(self):
        network = import_network(self.XML)
        verifier = Verifier(network)
        result = verifier.check(EF(LocationIs("R", "h")))
        assert result.holds
        # Guard and update survived: count incremented on the way.
        final = result.witness
        assert final.valuation["count"] == 1
