"""Tests for scheduler extraction and the induced Markov chain."""

import pytest

from repro.core import AnalysisError
from repro.mdp import (
    MDP,
    expected_total_reward,
    extract_scheduler,
    induced_chain,
    reachability_probability,
    simulate_chain,
    validate_scheduler,
)


def choice_mdp():
    """s0 has a risky action (0.9 goal) and a safe sink action."""
    m = MDP()
    s0 = m.add_state()
    goal = m.add_state(labels=["goal"])
    sink = m.add_state()
    m.add_action(s0, [(0.9, goal), (0.1, sink)], label="risky")
    m.add_action(s0, [(1.0, sink)], label="safe")
    return m, s0, goal, sink


class TestExtraction:
    def test_max_picks_risky(self):
        m, s0, goal, sink = choice_mdp()
        values = reachability_probability(m, {goal}, maximize=True)
        scheduler = extract_scheduler(m, values, maximize=True)
        label, _pairs, _r = m.actions_of(s0)[scheduler[s0]]
        assert label == "risky"

    def test_min_picks_safe(self):
        m, s0, goal, sink = choice_mdp()
        values = reachability_probability(m, {goal}, maximize=False)
        scheduler = extract_scheduler(m, values, maximize=False)
        label, _pairs, _r = m.actions_of(s0)[scheduler[s0]]
        assert label == "safe"

    def test_reward_scheduler(self):
        m = MDP()
        s0 = m.add_state()
        goal = m.add_state()
        m.add_action(s0, [(1.0, goal)], label="dear", reward=10.0)
        m.add_action(s0, [(1.0, goal)], label="cheap", reward=2.0)
        values = expected_total_reward(m, {goal}, maximize=False)
        scheduler = extract_scheduler(m, values, maximize=False,
                                      use_rewards=True)
        label, _pairs, _r = m.actions_of(s0)[scheduler[s0]]
        assert label == "cheap"


class TestInducedChain:
    def test_chain_is_deterministic(self):
        m, s0, goal, sink = choice_mdp()
        values = reachability_probability(m, {goal})
        chain = induced_chain(m, extract_scheduler(m, values))
        for state in range(chain.num_states):
            assert len(chain.actions_of(state)) == 1

    def test_chain_preserves_value(self):
        m, s0, goal, sink = choice_mdp()
        values = reachability_probability(m, {goal}, maximize=True)
        chain = induced_chain(m, extract_scheduler(m, values))
        chain_values = reachability_probability(chain, {goal})
        assert chain_values[s0] == pytest.approx(values[s0])

    def test_labels_carried_over(self):
        m, s0, goal, sink = choice_mdp()
        values = reachability_probability(m, {goal})
        chain = induced_chain(m, extract_scheduler(m, values))
        assert chain.states_with("goal") == {goal}


class TestSimulation:
    def test_simulate_reaches_goal(self):
        m, s0, goal, sink = choice_mdp()
        values = reachability_probability(m, {goal}, maximize=True)
        chain = induced_chain(m, extract_scheduler(m, values))
        reached, _reward, _steps = simulate_chain(chain, {goal}, rng=1)
        assert reached in (True, False)

    def test_simulate_rejects_mdp(self):
        m, s0, goal, sink = choice_mdp()
        m.finalize()
        with pytest.raises(AnalysisError):
            simulate_chain(m, {goal}, rng=2)

    def test_validate_scheduler(self):
        m, s0, goal, sink = choice_mdp()
        values = reachability_probability(m, {goal}, maximize=True)
        scheduler = extract_scheduler(m, values, maximize=True)
        ok, empirical = validate_scheduler(
            m, scheduler, {goal}, expected_probability=0.9,
            runs=2000, rng=3)
        assert ok, f"empirical {empirical} too far from 0.9"

    def test_reward_accumulates(self):
        m = MDP()
        s0, s1 = m.add_state(), m.add_state()
        goal = m.add_state()
        m.add_action(s0, [(1.0, s1)], reward=2.0)
        m.add_action(s1, [(1.0, goal)], reward=3.0)
        chain = induced_chain(m, [0, 0, 0])
        reached, reward, steps = simulate_chain(chain, {goal}, rng=4)
        assert reached and reward == 5.0 and steps == 2
