"""Online timed testing of Python train-gate controllers against the
Fig. 1(b) specification — the E7 experiment's controller half."""

import pytest

from repro.mbt import OnlineTimedTester, run_timed_suite
from repro.models.gate_impl import (
    GateController,
    LifoGateController,
    SleepyGateController,
)
from repro.models.traingate import gate_io, make_gate_spec


def make_tester(n_trains, rng=1):
    inputs, outputs = gate_io(n_trains)
    return OnlineTimedTester(make_gate_spec(n_trains), inputs=inputs,
                             outputs=outputs, rng=rng)


class TestCorrectController:
    def test_passes_many_runs(self):
        tester = make_tester(2)
        failures = run_timed_suite(tester, GateController, n_runs=20,
                                   duration=30, rng=2,
                                   stimulate_bias=0.7)
        assert failures == []

    def test_passes_with_three_trains(self):
        tester = make_tester(3)
        failures = run_timed_suite(tester, GateController, n_runs=10,
                                   duration=40, rng=3,
                                   stimulate_bias=0.7)
        assert failures == []


class TestMutants:
    def test_sleepy_controller_misses_deadline(self):
        """Never stopping an approaching train leaves the spec stuck in
        the committed Stopping location: quiescence is a failure."""
        tester = make_tester(2)
        failures = run_timed_suite(tester, SleepyGateController,
                                   n_runs=15, duration=30, rng=4,
                                   stimulate_bias=0.7)
        assert failures
        assert any("quiet" in f.reason for f in failures)

    def test_lifo_controller_restarts_wrong_train(self):
        """With three trains a dequeue can leave two queued: restarting
        the tail instead of the front is observable and caught."""
        tester = make_tester(3)
        failures = run_timed_suite(tester, LifoGateController,
                                   n_runs=25, duration=40, rng=5,
                                   stimulate_bias=0.7)
        assert failures
        assert any("not allowed" in f.reason for f in failures)

    def test_lifo_indistinguishable_with_two_trains(self):
        """A genuine testing-theory fact: with only two trains the
        queue never holds two trains after a dequeue, so the LIFO
        mutant conforms — no false positives."""
        tester = make_tester(2)
        failures = run_timed_suite(tester, LifoGateController,
                                   n_runs=20, duration=30, rng=6,
                                   stimulate_bias=0.7)
        assert failures == []


class TestAdapterBehaviour:
    def test_stop_emitted_same_unit(self):
        gate = GateController()
        gate.give_input("appr_0")
        assert gate.advance() == []
        gate.give_input("appr_1")
        assert gate.advance() == ["stop_1"]

    def test_go_after_leave(self):
        gate = GateController()
        gate.give_input("appr_0")
        gate.advance()
        gate.give_input("appr_1")
        gate.advance()
        gate.give_input("leave_0")
        assert gate.advance() == ["go_1"]

    def test_reset(self):
        gate = GateController()
        gate.give_input("appr_0")
        gate.reset()
        assert gate.queue == [] and gate.advance() == []
