"""Tests for the symbolic and discrete-time semantics of networks."""

import pytest

from repro.core import Declarations, ModelError
from repro.ta import (
    Automaton,
    DiscreteSemantics,
    Network,
    ZoneGraph,
    clk,
    discrete_transitions,
)


def ping_pong():
    """Two processes synchronising on a channel with a timing window."""
    sender = Automaton("Sender", clocks=["x"])
    sender.add_location("idle", invariant=[clk("x", "<=", 4)])
    sender.add_location("sent")
    sender.add_edge("idle", "sent", guard=[clk("x", ">=", 2)],
                    sync=("msg", "!"), resets=[("x", 0)])

    receiver = Automaton("Receiver", clocks=["y"])
    receiver.add_location("wait")
    receiver.add_location("got")
    receiver.add_edge("wait", "got", sync=("msg", "?"), resets=[("y", 0)])

    net = Network("pingpong")
    net.add_channel("msg")
    net.add_process("S", sender)
    net.add_process("R", receiver)
    return net.freeze()


class TestZoneGraph:
    def test_initial_is_delay_closed(self):
        # Classic abstraction: lu+ soundly forgets S.idle's x <= 4
        # ceiling (x already tops its only lower guard x >= 2) and
        # frees the dead receiver clock, so the raw zone this test
        # inspects would be wider.
        graph = ZoneGraph(ping_pong(), abstraction="k")
        init = graph.initial()
        # S.idle invariant bounds delay by 4.
        assert init.zone.contains_point((0, 0))
        assert init.zone.contains_point((4, 4))
        assert not init.zone.contains_point((5, 5))

    def test_synchronised_successor(self):
        # Classic abstraction: at (sent, got) both clocks are dead, so
        # the default lu+ abstraction would (soundly) drop the x == y
        # correlation this test observes through the raw zone.
        graph = ZoneGraph(ping_pong(), abstraction="k")
        init = graph.initial()
        succs = graph.successors(init)
        assert len(succs) == 1
        transition, state = succs[0]
        assert transition.channel == "msg"
        assert len(transition.participants) == 2
        names = graph.network.location_vector_names(state.locs)
        assert names == ("sent", "got")
        # x reset, y reset; both advance together unboundedly afterwards.
        assert state.zone.contains_point((0, 0))
        assert state.zone.contains_point((7, 7))
        assert not state.zone.contains_point((1, 0))

    def test_guard_restricts_window(self):
        graph = ZoneGraph(ping_pong())
        init = graph.initial()
        parts = graph.enabled_action_zone_parts(init)
        assert len(parts) == 1
        # Enabled only for x in [2, 4].
        assert parts[0].contains_point((2, 2))
        assert parts[0].contains_point((4, 4))
        assert not parts[0].contains_point((1, 1))

    def test_urgent_location_blocks_delay(self):
        a = Automaton("A", clocks=["x"])
        a.add_location("u", urgent=True)
        a.add_location("done")
        a.add_edge("u", "done")
        net = Network()
        net.add_process("P", a)
        # Classic abstraction: x is never compared, so lu+ would free
        # it and hide the blocked delay observed through the raw zone.
        graph = ZoneGraph(net, abstraction="k")
        init = graph.initial()
        assert init.zone.contains_point((0,))
        assert not init.zone.contains_point((1,))

    def test_committed_priority(self):
        """Only the committed process may move."""
        c = Automaton("C", clocks=[])
        c.add_location("comm", committed=True)
        c.add_location("after")
        c.add_edge("comm", "after")
        other = Automaton("O", clocks=[])
        other.add_location("s")
        other.add_location("t")
        other.add_edge("s", "t")
        net = Network()
        net.add_process("C", c)
        net.add_process("O", other)
        net.freeze()
        transitions = discrete_transitions(
            net, net.initial_locations(), net.initial_valuation())
        assert len(transitions) == 1
        assert transitions[0].participants[0][0].name == "C"

    def test_data_guard_and_update(self):
        a = Automaton("A", clocks=[])
        a.add_location("s")
        a.add_location("t")
        a.add_edge("s", "t",
                   data_guard=lambda env: env["n"] < 2,
                   update=[lambda env: env.__setitem__("n", env["n"] + 1)])
        net = Network()
        decls = Declarations()
        decls.declare_int("n", 0)
        net.declarations = decls
        net.add_process("P", a)
        graph = ZoneGraph(net)
        s0 = graph.initial()
        [(_t, s1)] = graph.successors(s0)
        assert s1.valuation["n"] == 1
        # State loops back to t; no further edges.
        assert graph.successors(s1) == []

    def test_broadcast(self):
        tx = Automaton("Tx", clocks=[])
        tx.add_location("a")
        tx.add_location("b")
        tx.add_edge("a", "b", sync=("beat", "!"))
        rx = Automaton("Rx", clocks=[])
        rx.add_location("w")
        rx.add_location("h")
        rx.add_edge("w", "h", sync=("beat", "?"))
        net = Network()
        net.add_channel("beat", broadcast=True)
        net.add_process("T", tx)
        net.add_process("R1", rx)
        net.add_process("R2", rx)
        graph = ZoneGraph(net)
        [(transition, state)] = graph.successors(graph.initial())
        assert transition.broadcast
        assert len(transition.participants) == 3
        assert graph.network.location_vector_names(state.locs) == (
            "b", "h", "h")

    def test_broadcast_receiver_clock_guard_rejected(self):
        tx = Automaton("Tx", clocks=[])
        tx.add_location("a")
        tx.add_location("b")
        tx.add_edge("a", "b", sync=("beat", "!"))
        rx = Automaton("Rx", clocks=["x"])
        rx.add_location("w")
        rx.add_location("h")
        rx.add_edge("w", "h", guard=[clk("x", "<=", 1)], sync=("beat", "?"))
        net = Network()
        net.add_channel("beat", broadcast=True)
        net.add_process("T", tx)
        net.add_process("R", rx)
        graph = ZoneGraph(net)
        with pytest.raises(ModelError):
            graph.successors(graph.initial())


class TestDiscreteSemantics:
    def test_tick_and_fire(self):
        sem = DiscreteSemantics(ping_pong())
        s = sem.initial()
        assert sem.can_tick(s)
        # Guard x >= 2 blocks the sync initially.
        assert sem.action_successors(s) == []
        s = sem.tick(sem.tick(s))
        assert s.clocks[1] == 2
        actions = sem.action_successors(s)
        assert len(actions) == 1
        _, succ = actions[0]
        assert succ.clocks[1] == 0 and succ.clocks[2] == 0

    def test_invariant_blocks_tick(self):
        sem = DiscreteSemantics(ping_pong())
        s = sem.initial()
        for _ in range(4):
            s = sem.tick(s)
        assert s.clocks[1] == 4
        assert not sem.can_tick(s)

    def test_clock_saturation(self):
        a = Automaton("A", clocks=["x"])
        a.add_location("s")
        a.add_location("t")
        a.add_edge("s", "t", guard=[clk("x", ">=", 3)])
        net = Network()
        net.add_process("P", a)
        sem = DiscreteSemantics(net)
        s = sem.initial()
        for _ in range(10):
            s = sem.tick(s)
        assert s.clocks[1] == 4  # saturated at max constant + 1

    def test_rejects_strict_guards(self):
        a = Automaton("A", clocks=["x"])
        a.add_location("s")
        a.add_location("t")
        a.add_edge("s", "t", guard=[clk("x", "<", 3)])
        net = Network()
        net.add_process("P", a)
        with pytest.raises(ModelError):
            DiscreteSemantics(net)

    def test_rejects_diagonals(self):
        a = Automaton("A", clocks=["x", "y"])
        a.add_location("s")
        a.add_location("t")
        a.add_edge("s", "t", guard=[clk("x", "<=", 3, other="y")])
        net = Network()
        net.add_process("P", a)
        with pytest.raises(ModelError):
            DiscreteSemantics(net)

    def test_successors_include_tick(self):
        sem = DiscreteSemantics(ping_pong())
        succs = sem.successors(sem.initial())
        assert any(t == "tick" for t, _s in succs)
