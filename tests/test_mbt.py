"""Tests for the model-based testing package: LTS/suspension semantics,
ioco, test generation/execution, and the bus case study."""

import pytest

from repro.core import ModelError, TestFailure
from repro.mbt import (
    DELTA,
    FAIL,
    LTS,
    LTSAdapter,
    PASS,
    BrokenFifoBus,
    FifoBusAdapter,
    LeakyFifoBus,
    generate_test,
    ioco_check,
    online_test,
    run_test,
    run_test_suite,
    suspension_traces,
)
from repro.models.busspec import make_bus_spec, make_lifo_bus_spec


def vending(price=1):
    """Classic ioco example: coin then coffee."""
    spec = LTS("vending", inputs=["coin"], outputs=["coffee"])
    spec.add_state("idle")
    spec.add_state("paid")
    spec.add_transition("idle", "coin", "paid")
    spec.add_transition("paid", "coffee", "idle")
    return spec.make_input_enabled()


def broken_vending():
    """Mutant: produces tea... labelled coffee twice."""
    impl = LTS("broken", inputs=["coin"], outputs=["coffee"])
    impl.add_state("idle")
    impl.add_state("paid")
    impl.add_state("extra")
    impl.add_transition("idle", "coin", "paid")
    impl.add_transition("paid", "coffee", "extra")
    impl.add_transition("extra", "coffee", "idle")  # second, unpaid
    return impl.make_input_enabled()


class TestLTS:
    def test_reserved_labels(self):
        with pytest.raises(ModelError):
            LTS(inputs=["tau"])
        with pytest.raises(ModelError):
            LTS(outputs=["delta"])

    def test_label_partition(self):
        with pytest.raises(ModelError):
            LTS(inputs=["a"], outputs=["a"])

    def test_unknown_label_rejected(self):
        spec = LTS(inputs=["a"], outputs=["x"])
        spec.add_state("s")
        with pytest.raises(ModelError):
            spec.add_transition("s", "mystery", "s")

    def test_tau_closure(self):
        spec = LTS(inputs=[], outputs=["x"])
        spec.add_state("s0")
        spec.add_state("s1")
        spec.add_state("s2")
        spec.add_transition("s0", "tau", "s1")
        spec.add_transition("s1", "tau", "s2")
        assert spec.tau_closure({"s0"}) == {"s0", "s1", "s2"}

    def test_quiescence(self):
        spec = vending()
        initial = spec.after_trace(())
        assert spec.out(initial) == {DELTA}
        after_coin = spec.after_trace(("coin",))
        assert spec.out(after_coin) == {"coffee"}

    def test_after_delta(self):
        spec = vending()
        initial = spec.after_trace(())
        assert spec.after(initial, DELTA) == initial

    def test_input_enabled_check(self):
        spec = LTS(inputs=["a"], outputs=[])
        spec.add_state("s")
        assert not spec.is_input_enabled()
        spec.make_input_enabled()
        assert spec.is_input_enabled()


class TestIoco:
    def test_conforming(self):
        assert ioco_check(vending(), vending())

    def test_extra_output_detected(self):
        verdict = ioco_check(broken_vending(), vending())
        assert not verdict
        assert verdict.offending_output == "coffee"
        assert verdict.trace == ["coin", "coffee"]

    def test_partial_impl_conforms(self):
        """An implementation that never outputs is quiescent -- which
        vending's initial state allows, but the paid state does not."""
        lazy = LTS("lazy", inputs=["coin"], outputs=["coffee"])
        lazy.add_state("s")
        lazy.make_input_enabled()
        verdict = ioco_check(lazy, vending())
        assert not verdict  # after coin, delta is forbidden

    def test_impl_with_fewer_behaviours_conforms(self):
        """ioco allows the implementation to be more deterministic."""
        spec = LTS("spec", inputs=["coin"], outputs=["coffee", "tea"])
        spec.add_state("idle")
        spec.add_state("paid")
        spec.add_transition("idle", "coin", "paid")
        spec.add_transition("paid", "coffee", "idle")
        spec.add_transition("paid", "tea", "idle")
        spec.make_input_enabled()
        impl = LTS("impl", inputs=["coin"], outputs=["coffee", "tea"])
        impl.add_state("idle")
        impl.add_state("paid")
        impl.add_transition("idle", "coin", "paid")
        impl.add_transition("paid", "coffee", "idle")  # never tea
        impl.make_input_enabled()
        assert ioco_check(impl, spec)

    def test_lifo_bus_not_ioco_fifo(self):
        verdict = ioco_check(make_lifo_bus_spec(), make_bus_spec())
        assert not verdict
        assert verdict.offending_output.startswith("deliver_")

    def test_fifo_bus_self_conforms(self):
        assert ioco_check(make_bus_spec(), make_bus_spec())

    def test_suspension_traces(self):
        traces = suspension_traces(vending(), 2)
        assert () in traces
        assert ("coin",) in traces
        assert ("coin", "coffee") in traces
        assert (DELTA,) in traces


class TestGeneration:
    def test_test_tree_shape(self):
        test = generate_test(vending(), rng=1, max_depth=6)
        assert test.depth() <= 6
        assert test.size() >= 1

    def test_correct_impl_always_passes(self):
        spec = vending()
        adapter = LTSAdapter(vending(), rng=2)
        verdicts, failures = run_test_suite(spec, adapter, 40, rng=3)
        assert failures == []
        assert set(verdicts) == {PASS}

    def test_mutant_detected(self):
        spec = vending()
        adapter = LTSAdapter(broken_vending(), rng=4)
        _verdicts, failures = run_test_suite(spec, adapter, 60, rng=5,
                                             stop_on_fail=True)
        assert failures

    def test_online_correct(self):
        trace = online_test(vending(), LTSAdapter(vending(), rng=6),
                            steps=50, rng=7)
        assert len(trace) > 0

    def test_online_mutant_fails(self):
        with pytest.raises(TestFailure):
            for seed in range(20):
                online_test(vending(), LTSAdapter(broken_vending(),
                                                  rng=seed),
                            steps=50, rng=seed + 100)


class TestFifoBusCaseStudy:
    """ioco testing of real Python implementations behind an adapter."""

    def test_correct_bus_passes(self):
        spec = make_bus_spec()
        adapter = FifoBusAdapter()
        verdicts, failures = run_test_suite(spec, adapter, 60, rng=8,
                                            max_depth=8)
        assert failures == []

    def test_lifo_mutant_detected(self):
        spec = make_bus_spec()
        adapter = FifoBusAdapter(BrokenFifoBus)
        _verdicts, failures = run_test_suite(spec, adapter, 300, rng=9,
                                             max_depth=10,
                                             stop_on_fail=True)
        assert failures, "the LIFO mutant must be caught"

    def test_leaky_mutant_detected(self):
        spec = make_bus_spec()
        adapter = FifoBusAdapter(LeakyFifoBus)
        _verdicts, failures = run_test_suite(spec, adapter, 400, rng=10,
                                             max_depth=10,
                                             stop_on_fail=True)
        assert failures, "the leaky-unsubscribe mutant must be caught"

    def test_online_bus(self):
        trace = online_test(make_bus_spec(), FifoBusAdapter(),
                            steps=200, rng=11)
        assert trace


class TestGuidedGeneration:
    """TGV-style test purposes (the paper names TGV among the ioco
    tools)."""

    def _full_queue(self, state):
        return state.startswith("on:") and len(state) == len("on:") + 2

    def test_purpose_reached_on_correct_impl(self):
        from repro.mbt import INCONCLUSIVE, generate_guided_test

        spec = make_bus_spec()
        test = generate_guided_test(spec, self._full_queue)
        verdict, trace = run_test(test, FifoBusAdapter())
        assert verdict == PASS
        assert trace[0] == "subscribe"

    def test_inconclusive_branching_exists(self):
        from repro.mbt import INCONCLUSIVE, generate_guided_test

        spec = make_bus_spec()
        # A purpose needing a delivery: observing the *other* message
        # first would be conforming but off-path.
        test = generate_guided_test(
            spec, lambda s: s == "on:")

        def leaves(node):
            if node.kind in (PASS, FAIL, INCONCLUSIVE):
                return [node.kind]
            out = []
            for child in node.branches.values():
                out.extend(leaves(child))
            return out

        assert PASS in leaves(test)

    def test_unreachable_purpose_rejected(self):
        from repro.core import AnalysisError
        from repro.mbt import generate_guided_test

        spec = make_bus_spec()
        with pytest.raises(AnalysisError):
            generate_guided_test(spec, lambda s: s == "mars")

    def test_trace_purpose_catches_mutant(self):
        """An explicit purpose trace drives the LIFO mutant through a
        delivery from a two-element queue, where it must fail."""
        from repro.mbt import test_from_trace

        spec = make_bus_spec()
        test = test_from_trace(
            spec, ["subscribe", "publish_a", "publish_b", "deliver_a"])
        verdict, trace = run_test(test, FifoBusAdapter(BrokenFifoBus))
        assert verdict == FAIL
        assert trace[-1] == "deliver_b"
        # The correct implementation passes the same test.
        verdict_ok, _t = run_test(test, FifoBusAdapter())
        assert verdict_ok == PASS

    def test_trace_purpose_validates_against_spec(self):
        from repro.core import AnalysisError
        from repro.mbt import test_from_trace

        spec = make_bus_spec()
        with pytest.raises(AnalysisError):
            test_from_trace(spec, ["subscribe", "deliver_a"])
