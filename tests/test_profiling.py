"""Tests for the longitudinal performance observatory: the sampling
profiler (and its worker-side shipping), resource accounting, the
persistent run store, and run-to-run diffing with attribution.

The determinism tests use manual-mode profilers (``hz=0``): wall-clock
sampling is stochastic, but the merge algebra is exact, so serial,
parallel, and fault-recovered merged profiles must be bit-identical.
"""

import json
import os
import threading
import time

import pytest

from repro.obs import resources
from repro.obs.diff import (
    attribute_regression,
    attribution_for_store,
    diff_reports,
    flatten_spans,
    format_diff,
)
from repro.obs.metrics import Collector, collecting
from repro.obs.profiler import (
    DEFAULT_HZ,
    Profile,
    Profiler,
    active_profiler,
    frame_label,
    profile_record,
    profiling,
)
from repro.obs.report import Report, _check_one, main as report_main
from repro.obs.runstore import (
    RunStore,
    current_git_sha,
    run_fingerprint,
    validate_record,
)
from repro.runtime import (
    FaultInjector,
    FaultPolicy,
    ParallelExecutor,
    SerialExecutor,
)

MP_START = os.environ.get("REPRO_MP_START") or None


@pytest.fixture(scope="module")
def pool2():
    with ParallelExecutor(workers=2, mp_context=MP_START) as executor:
        yield executor


# Module-level task (picklable) for the parallel-equivalence tests:
# records one deterministic logical sample per seed.

def record_probe(seeds):
    total = 0
    for seed in seeds:
        profile_record(("probe.run", f"probe.leaf{seed % 3}"))
        total += seed
    return total


BATCHES = [(list(range(i * 5, i * 5 + 5)),) for i in range(8)]


def merged_probe_profile(executor, policy=None):
    """Run the probe batches under a manual-mode ambient profiler and
    return ``(results, profile snapshot)``."""
    with profiling(hz=0) as profiler:
        results = list(executor.imap(record_probe, BATCHES,
                                     policy=policy))
    return results, profiler.profile.to_dict()


class TestProfile:
    def test_record_and_counts(self):
        profile = Profile(hz=0)
        profile.record(("a", "b"))
        profile.record(("a", "b"), 2)
        profile.record(("a",))
        assert profile.counts == {("a", "b"): 3, ("a",): 1}
        assert profile.samples == 4

    def test_merge_is_commutative(self):
        left, right = Profile(hz=0), Profile(hz=0)
        left.record(("a", "b"), 3)
        left.record(("c",), 1)
        right.record(("a", "b"), 2)
        right.record(("d",), 5)
        one = Profile(hz=0).merge(left).merge(right)
        other = Profile(hz=0).merge(right).merge(left)
        assert one.to_dict() == other.to_dict()
        assert one.counts[("a", "b")] == 5
        assert one.samples == 11

    def test_merge_accepts_snapshot_dicts(self):
        source = Profile(hz=0)
        source.record(("root", "leaf"), 7)
        source.wall_seconds = 2.0
        source.sampling_seconds = 0.1
        merged = Profile(hz=0).merge(source.to_dict())
        assert merged.counts == {("root", "leaf"): 7}
        assert merged.wall_seconds == 2.0
        assert merged.sampling_seconds == 0.1

    def test_collapsed_format(self):
        profile = Profile(hz=0)
        profile.record(("main", "explore", "dbm"), 42)
        profile.record(("main", "other"), 1)
        assert profile.to_collapsed() == \
            "main;explore;dbm 42\nmain;other 1"

    def test_hotspots_self_and_cum(self):
        profile = Profile(hz=0)
        profile.record(("a", "b"), 3)   # self b=3, cum a=3,b=3
        profile.record(("a",), 1)       # self a=1, cum a=1
        rows = profile.hotspots()
        by_name = {row["function"]: row for row in rows}
        assert by_name["b"]["self"] == 3
        assert by_name["a"]["self"] == 1
        assert by_name["a"]["cum"] == 4
        assert by_name["b"]["self_fraction"] == pytest.approx(0.75)

    def test_hotspots_count_recursion_once(self):
        profile = Profile(hz=0)
        profile.record(("f", "f", "f"), 5)
        row = profile.hotspots()[0]
        assert row["function"] == "f"
        assert row["self"] == 5
        assert row["cum"] == 5  # each stack counted once, not 3x

    def test_overhead_ratio(self):
        profile = Profile(hz=0)
        assert profile.overhead_ratio == 0.0  # no wall time yet
        profile.wall_seconds = 10.0
        profile.sampling_seconds = 0.2
        assert profile.overhead_ratio == pytest.approx(0.02)

    def test_frame_label_is_collapsed_safe(self):
        label = frame_label(record_probe.__code__)
        assert label.startswith("test_profiling.")
        assert ";" not in label


def busy(deadline):
    total = 0
    while time.perf_counter() < deadline:
        total += sum(range(200))
    return total


class TestSampling:
    def test_off_by_default(self):
        assert active_profiler() is None
        profile_record(("never", "recorded"))  # must be a no-op

    def test_sampler_collects_stacks_within_overhead_bound(self):
        collector = Collector("profiled")
        with collecting(collector):
            with profiling(hz=250) as profiler:
                busy(time.perf_counter() + 0.4)
        profile = profiler.profile
        assert profile.samples > 0
        assert any("test_profiling.busy" in ";".join(stack)
                   for stack in profile.counts)
        # The duty cycle the CI smoke job bounds at 5%.
        assert profile.overhead_ratio < 0.05
        snap = collector.snapshot()
        assert snap["counters"]["obs.profile.samples"] == profile.samples
        assert snap["max_gauges"]["obs.profile.overhead"] == \
            pytest.approx(profile.overhead_ratio, abs=1e-6)

    def test_sampler_thread_stops_on_exit(self):
        with profiling(hz=200):
            assert any(t.name == "repro-obs-sampler"
                       for t in threading.enumerate())
        assert not any(t.name == "repro-obs-sampler"
                       for t in threading.enumerate())

    def test_manual_mode_records_through_ambient(self):
        with profiling(hz=0) as profiler:
            profile_record(("x", "y"), 4)
        assert profiler.profile.counts == {("x", "y"): 4}
        assert profiler.profile.wall_seconds > 0

    def test_negative_hz_rejected(self):
        with pytest.raises(ValueError):
            Profiler(hz=-1)


class TestParallelProfileEquivalence:
    """The tentpole guarantee: per-worker profiles ship home and merge
    in task order, so the merged parallel profile is bit-identical to
    the serial one — including under fault recovery."""

    def test_parallel_matches_serial(self, pool2):
        serial_results, serial = merged_probe_profile(SerialExecutor())
        parallel_results, parallel = merged_probe_profile(pool2)
        assert parallel_results == serial_results
        assert parallel["stacks"] == serial["stacks"]
        assert parallel["samples"] == serial["samples"]

    def test_fault_recovery_never_double_counts(self, pool2):
        _, reference = merged_probe_profile(SerialExecutor())
        policy = FaultPolicy(max_retries=3, backoff=0.01,
                             injector=FaultInjector(kill={1},
                                                    raises={3, 5}))
        results, recovered = merged_probe_profile(pool2, policy=policy)
        # A failed attempt's worker-side profile dies with the worker;
        # only the clean attempt merges, so counts cannot inflate.
        assert recovered["stacks"] == reference["stacks"]
        assert recovered["samples"] == reference["samples"]
        assert results == [sum(batch[0]) for batch in BATCHES]

    def test_serial_fault_recovery_matches_too(self):
        _, reference = merged_probe_profile(SerialExecutor())
        policy = FaultPolicy(max_retries=2, backoff=0.0,
                             injector=FaultInjector(raises={2, 4}))
        _, recovered = merged_probe_profile(SerialExecutor(),
                                            policy=policy)
        assert recovered["stacks"] == reference["stacks"]


class TestResources:
    def test_sample_records_max_gauges(self):
        collector = Collector("res")
        readings = resources.sample(collector)
        assert readings["obs.rss_peak_kb"] > 0
        assert readings["obs.rss_kb"] > 0
        snap = collector.snapshot()["max_gauges"]
        assert snap["obs.rss_peak_kb"] == readings["obs.rss_peak_kb"]
        assert "obs.gc_collections" in snap

    def test_heap_gauges_only_when_tracing(self):
        assert "obs.heap_kb" not in resources.sample()
        collector = Collector("heap")
        with resources.heap_tracing(collector):
            ballast = [bytearray(1024) for _ in range(200)]
        snap = collector.snapshot()["max_gauges"]
        assert snap["obs.heap_peak_kb"] >= snap["obs.heap_kb"]
        assert snap["obs.heap_peak_kb"] > 0
        del ballast

    def test_peaks_merge_by_maximum(self):
        low, high = Collector("low"), Collector("high")
        low.set_max("obs.rss_peak_kb", 1000)
        high.set_max("obs.rss_peak_kb", 5000)
        low.merge(high.snapshot())
        assert low.value("obs.rss_peak_kb") == 5000
        # and a later, smaller snapshot cannot lower it
        low.merge(Collector("later").snapshot())
        assert low.value("obs.rss_peak_kb") == 5000


def make_report(counter_value=10, stacks=None, seconds=1.0, meta=None):
    """A synthetic report dict with controlled counters and profile."""
    collector = Collector("synthetic")
    collector.incr("mc.states", counter_value)
    profile = None
    if stacks is not None:
        profile = Profile(hz=0)
        for stack, n in stacks.items():
            profile.record(tuple(stack.split(";")), n)
        profile.wall_seconds = seconds
    report = Report(collector, profile=profile, meta=meta,
                    sample_resources=False)
    return report.to_dict()


class TestRunStore:
    def test_append_and_read_back(self, tmp_path):
        store = RunStore(tmp_path / "runs.jsonl")
        record = store.append(make_report(), "bench.json")
        assert record["run_id"] == "bench.json#1"
        assert record["schema"] == "repro.runs/1"
        store.append(make_report(counter_value=12), "bench.json")
        records, skipped = store.scan()
        assert [r["run_id"] for r in records] == \
            ["bench.json#1", "bench.json#2"]
        assert skipped == 0
        assert not os.path.exists(f"{store.path}.tmp")

    def test_sequences_are_per_label(self, tmp_path):
        store = RunStore(tmp_path / "runs.jsonl")
        store.append(make_report(), "a.json")
        store.append(make_report(), "b.json")
        record = store.append(make_report(), "a.json")
        assert record["run_id"] == "a.json#2"

    def test_fingerprint_ignores_measurements(self):
        config = {"benchmark": "explore", "n": 5, "quick": False}
        one = make_report(meta={**config, "seconds": 1.23})
        two = make_report(meta={**config, "seconds": 4.56})
        other = make_report(meta={**config, "n": 6, "seconds": 1.23})
        assert run_fingerprint("x", one) == run_fingerprint("x", two)
        assert run_fingerprint("x", one) != run_fingerprint("x", other)
        assert run_fingerprint("x", one) != run_fingerprint("y", one)

    def test_corrupt_lines_skipped_and_preserved(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        store = RunStore(path)
        store.append(make_report(), "a.json")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"truncated": \n')
            handle.write("not json at all\n")
        store.append(make_report(), "a.json")
        records, skipped = store.scan()
        assert [r["run_id"] for r in records] == ["a.json#1", "a.json#2"]
        assert skipped == 2
        # foreign bytes survive the atomic rewrite verbatim
        text = path.read_text(encoding="utf-8")
        assert "not json at all" in text

    def test_find_resolution_order(self, tmp_path):
        store = RunStore(tmp_path / "runs.jsonl")
        meta = {"benchmark": "explore"}
        store.append(make_report(counter_value=1, meta=meta), "a.json")
        latest = store.append(make_report(counter_value=2, meta=meta),
                              "a.json")
        assert store.find("a.json#1")["report"]["metrics"]["counters"][
            "mc.states"] == 1
        assert store.find("a.json")["run_id"] == "a.json#2"
        assert store.find(latest["fingerprint"])["run_id"] == "a.json#2"
        assert store.find("nope") is None

    def test_git_sha_stamped_in_checkout(self, tmp_path):
        sha = current_git_sha(cwd=os.path.dirname(__file__))
        assert sha is None or len(sha) == 40
        store = RunStore(tmp_path / "runs.jsonl")
        record = store.append(make_report(), "a.json")
        assert "git_sha" in record and "created" in record

    def test_validate_record_rejects_bad_envelopes(self):
        with pytest.raises(ValueError):
            validate_record([])
        with pytest.raises(ValueError):
            validate_record({"schema": "repro.runs/0"})
        good = {"schema": "repro.runs/1", "run_id": "x#1", "label": "x",
                "fingerprint": "abc", "report": make_report()}
        assert validate_record(good) is good
        bad = dict(good)
        bad["report"] = {"schema": "repro.obs/1"}  # no metrics
        with pytest.raises(ValueError):
            validate_record(bad)

    def test_check_gate_is_strict_on_stores(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        store = RunStore(path)
        store.append(make_report(), "a.json")
        store.append(make_report(), "a.json")
        assert _check_one(str(path)) == "2 run records"
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("garbage\n")
        with pytest.raises(ValueError, match="line 3"):
            _check_one(str(path))


class TestReportProfileAndAtomicWrite:
    def test_write_is_atomic_and_valid(self, tmp_path):
        path = tmp_path / "report.json"
        Report(Collector("w")).write(path)
        assert not os.path.exists(f"{path}.tmp")
        data = json.loads(path.read_text(encoding="utf-8"))
        assert data["schema"] == "repro.obs/1"
        # resource accounting rode along by default
        assert "obs.rss_peak_kb" in data["metrics"]["max_gauges"]

    def test_profile_embeds_from_profiler_profile_or_dict(self):
        profile = Profile(hz=0)
        profile.record(("a", "b"), 2)
        profiler = Profiler(hz=0, profile=profile)
        for source in (profiler, profile, profile.to_dict()):
            data = Report(Collector("p"), profile=source,
                          sample_resources=False).to_dict()
            assert data["profile"]["stacks"] == {"a;b": 2}

    def test_no_profile_key_when_absent(self):
        data = Report(Collector("np"), sample_resources=False).to_dict()
        assert "profile" not in data


class TestDiff:
    def test_counter_rows_and_attribution(self):
        a = make_report(counter_value=10,
                        stacks={"main;fast": 8, "main;slow": 2})
        b = make_report(counter_value=15,
                        stacks={"main;fast": 5, "main;slow": 15})
        diff = diff_reports(a, b)
        counters = {row[0]: row for row in diff["counters"]}
        name, va, vb, delta, drift = counters["mc.states"]
        assert (va, vb, delta) == (10, 15, 5)
        assert drift == pytest.approx(0.5)
        top = diff["profile"][0]
        assert top["function"] == "slow"
        assert top["delta_fraction"] == pytest.approx(0.75 - 0.2)

    def test_attribution_fractions_survive_different_totals(self):
        # 10 vs 1000 samples: fractions, not counts, are compared.
        a = {"stacks": {"m;f": 5, "m;g": 5}, "wall_seconds": 1.0}
        b = {"stacks": {"m;f": 900, "m;g": 100}, "wall_seconds": 1.0}
        rows = attribute_regression(a, b)
        by_name = {row["function"]: row for row in rows}
        assert by_name["f"]["delta_fraction"] == pytest.approx(0.4)
        assert by_name["g"]["delta_fraction"] == pytest.approx(-0.4)

    def test_flatten_spans_sums_repeats(self):
        trace = [{"name": "s", "duration": 1.0,
                  "children": [{"name": "c", "duration": 0.25},
                               {"name": "c", "duration": 0.25}]}]
        flat = flatten_spans(trace)
        assert flat["s/c"] == {"duration": 0.5, "count": 2}

    def test_format_diff_changed_only(self):
        a = make_report(counter_value=10)
        b = make_report(counter_value=10)
        assert format_diff(diff_reports(a, b)) == "no differences"
        text = format_diff(diff_reports(a, b), changed_only=False)
        assert "mc.states" in text

    def test_attribution_for_store(self, tmp_path):
        store = RunStore(tmp_path / "runs.jsonl")
        store.append(make_report(stacks={"m;f": 9, "m;g": 1}), "a.json")
        assert attribution_for_store(store, "a.json") is None
        store.append(make_report(stacks={"m;f": 2, "m;g": 8}), "a.json")
        text = attribution_for_store(store, "a.json")
        assert "a.json#1" in text and "a.json#2" in text
        assert "hot-function attribution" in text

    def test_diff_cli_end_to_end(self, tmp_path, capsys):
        store_path = str(tmp_path / "runs.jsonl")
        store = RunStore(store_path)
        meta = {"benchmark": "explore"}
        store.append(make_report(counter_value=10, meta=meta,
                                 stacks={"m;f": 9, "m;g": 1}), "a.json")
        store.append(make_report(counter_value=20, meta=meta,
                                 stacks={"m;f": 1, "m;g": 9}), "a.json")
        code = report_main(["diff", "a.json#1", "a.json#2",
                            "--runstore", store_path])
        out = capsys.readouterr().out
        assert code == 0
        assert "mc.states" in out
        assert "hot-function attribution" in out
        assert report_main(["diff", "a.json#1", "missing",
                            "--runstore", store_path]) == 2

    def test_default_hz_is_sane(self):
        assert DEFAULT_HZ == 100.0
