"""Run the doctest examples embedded in public docstrings."""

import doctest

import pytest

import repro.bip.component
import repro.core.values
import repro.ta.syntax


@pytest.mark.parametrize("module", [
    repro.core.values,
    repro.ta.syntax,
    repro.bip.component,
])
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures " \
                                f"in {module.__name__}"
