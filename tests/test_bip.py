"""Tests for the BIP framework: components, connectors, priorities,
hierarchy/flattening, engine, and D-Finder deadlock detection."""

import pytest

from repro.bip import (
    AtomicComponent,
    BIPEngine,
    BIPSystem,
    Composite,
    Connector,
    component_invariant,
    explore_statespace,
    find_potential_deadlocks,
    flatten,
    trap_closure,
)
from repro.core import AnalysisError, ModelError


def producer_consumer():
    """Producer and consumer handing items over a rendezvous."""
    producer = AtomicComponent("Prod", ports=["make", "give"])
    producer.add_place("empty")
    producer.add_place("full")
    producer.add_transition("make", "empty", "full")
    producer.add_transition("give", "full", "empty")

    consumer = AtomicComponent("Cons", ports=["take", "use"])
    consumer.add_place("idle")
    consumer.add_place("busy")
    consumer.add_transition("take", "idle", "busy")
    consumer.add_transition("use", "busy", "idle")

    system = BIPSystem("prodcons")
    system.add_component(producer)
    system.add_component(consumer)
    system.add_connector(Connector("c_make", [("Prod", "make")]))
    system.add_connector(Connector(
        "c_hand", [("Prod", "give"), ("Cons", "take")]))
    system.add_connector(Connector("c_use", [("Cons", "use")]))
    return system


class TestComponents:
    def test_unknown_port(self):
        c = AtomicComponent("C", ports=["p"])
        c.add_place("s")
        with pytest.raises(ModelError):
            c.add_transition("q", "s", "s")

    def test_unknown_place(self):
        c = AtomicComponent("C", ports=["p"])
        c.add_place("s")
        with pytest.raises(ModelError):
            c.add_transition("p", "s", "t")

    def test_guarded_transition(self):
        c = AtomicComponent("C", ports=["p"])
        c.add_place("s")
        c.declare_int("n", 0)
        c.add_transition("p", "s", "s",
                         guard=lambda env: env["n"] < 1,
                         update=lambda env: env.__setitem__("n", 1))
        system = BIPSystem()
        system.add_component(c)
        system.add_connector(Connector("c_p", [("C", "p")]))
        state = system.initial_state()
        [i] = system.enabled_interactions(state)
        state = system.execute(state, i)
        assert state.valuations[0]["n"] == 1
        assert system.enabled_interactions(state) == []


class TestConnectors:
    def test_rendezvous_requires_all(self):
        system = producer_consumer()
        state = system.initial_state()
        names = [i.connector.name
                 for i in system.enabled_interactions(state)]
        # give/take cannot fire yet: the producer is empty.
        assert names == ["c_make"]

    def test_rendezvous_fires_jointly(self):
        system = producer_consumer()
        state = system.initial_state()
        [make] = system.enabled_interactions(state)
        state = system.execute(state, make)
        hand = [i for i in system.enabled_interactions(state)
                if i.connector.name == "c_hand"]
        assert len(hand) == 1
        state = system.execute(state, hand[0])
        assert state.places == ("empty", "busy")

    def test_broadcast_takes_ready_receivers(self):
        beat = AtomicComponent("Clock", ports=["tick"])
        beat.add_place("run")
        beat.add_transition("tick", "run", "run")
        listeners = []
        for name in ("A", "B"):
            listener = AtomicComponent(name, ports=["hear"])
            listener.add_place("wait")
            listener.add_place("heard")
            listener.add_transition("hear", "wait", "heard")
            listeners.append(listener)
        system = BIPSystem()
        system.add_component(beat)
        for listener in listeners:
            system.add_component(listener)
        system.add_connector(Connector(
            "c_beat",
            [("Clock", "tick"), ("A", "hear"), ("B", "hear")],
            trigger=("Clock", "tick")))
        state = system.initial_state()
        [interaction] = system.enabled_interactions(state)
        assert len(interaction.participants) == 3
        state = system.execute(state, interaction)
        assert state.places == ("run", "heard", "heard")
        # Receivers consumed: next beat is the trigger alone.
        [alone] = system.enabled_interactions(state)
        assert len(alone.participants) == 1

    def test_connector_guard(self):
        system = producer_consumer()
        system.connectors[0].guard = lambda ctx: False
        assert system.enabled_interactions(system.initial_state()) == []

    def test_transfer_moves_data(self):
        src = AtomicComponent("Src", ports=["send"])
        src.add_place("s")
        src.declare_int("value", 42)
        src.add_transition("send", "s", "s")
        dst = AtomicComponent("Dst", ports=["recv"])
        dst.add_place("s")
        dst.declare_int("got", 0)
        dst.add_transition("recv", "s", "s")
        system = BIPSystem()
        system.add_component(src)
        system.add_component(dst)

        def transfer(envs):
            envs["Dst"]["got"] = envs["Src"]["value"]

        system.add_connector(Connector(
            "c_move", [("Src", "send"), ("Dst", "recv")],
            transfer=transfer))
        state = system.initial_state()
        [i] = system.enabled_interactions(state)
        state = system.execute(state, i)
        assert state.valuations[1]["got"] == 42

    def test_endpoint_validation(self):
        system = producer_consumer()
        with pytest.raises(ModelError):
            system.add_connector(Connector("bad", [("Prod", "nope")]))
        with pytest.raises(ModelError):
            system.add_connector(Connector("bad2", [("Ghost", "p")]))

    def test_trigger_must_be_endpoint(self):
        with pytest.raises(ModelError):
            Connector("c", [("A", "p")], trigger=("B", "q"))


class TestPriorities:
    def _two_loops(self):
        a = AtomicComponent("A", ports=["p"])
        a.add_place("s")
        a.add_transition("p", "s", "s")
        b = AtomicComponent("B", ports=["q"])
        b.add_place("s")
        b.add_transition("q", "s", "s")
        system = BIPSystem()
        system.add_component(a)
        system.add_component(b)
        system.add_connector(Connector("c_a", [("A", "p")]))
        system.add_connector(Connector("c_b", [("B", "q")]))
        return system

    def test_priority_suppresses_lower(self):
        system = self._two_loops()
        system.add_priority("c_a", "c_b")
        names = [i.connector.name for i in
                 system.enabled_interactions(system.initial_state())]
        assert names == ["c_b"]

    def test_priority_inert_when_higher_disabled(self):
        system = self._two_loops()
        system.component("B").transitions[0].guard = lambda env: False
        system.add_priority("c_a", "c_b")
        names = [i.connector.name for i in
                 system.enabled_interactions(system.initial_state())]
        assert names == ["c_a"]

    def test_guarded_priority(self):
        system = self._two_loops()
        system.add_priority("c_a", "c_b", condition=lambda ctx: False)
        names = {i.connector.name for i in
                 system.enabled_interactions(system.initial_state())}
        assert names == {"c_a", "c_b"}

    def test_unknown_connector_in_priority(self):
        system = self._two_loops()
        with pytest.raises(ModelError):
            system.add_priority("c_a", "ghost")

    def test_self_priority_rejected(self):
        system = self._two_loops()
        with pytest.raises(ModelError):
            system.add_priority("c_a", "c_a")


class TestHierarchy:
    def test_flatten_resolves_exports(self):
        inner = AtomicComponent("Leaf", ports=["p"])
        inner.add_place("s")
        inner.add_transition("p", "s", "s")
        box = Composite("box")
        box.add_child(inner)
        box.export("surface", "Leaf", "p")
        root = Composite("root")
        root.add_child(box)
        root.add_connector(Connector("c", [("box", "surface")]))
        system = flatten(root)
        assert [c.name for c in system.components] == ["box/Leaf"]
        assert system.connectors[0].endpoints == [("box/Leaf", "p")]

    def test_flatten_rejects_unexported_port(self):
        inner = AtomicComponent("Leaf", ports=["p"])
        inner.add_place("s")
        box = Composite("box")
        box.add_child(inner)
        root = Composite("root")
        root.add_child(box)
        root.add_connector(Connector("c", [("box", "p")]))
        with pytest.raises(ModelError):
            flatten(root)

    def test_double_export_rejected(self):
        inner = AtomicComponent("Leaf", ports=["p"])
        inner.add_place("s")
        box = Composite("box")
        box.add_child(inner)
        box.export("surface", "Leaf", "p")
        with pytest.raises(ModelError):
            box.export("surface", "Leaf", "p")


class TestEngine:
    def test_run_until_deadlock(self):
        c = AtomicComponent("C", ports=["p"])
        c.add_place("s")
        c.add_place("end")
        c.add_transition("p", "s", "end")
        system = BIPSystem()
        system.add_component(c)
        system.add_connector(Connector("c_p", [("C", "p")]))
        engine = BIPEngine(system, rng=1)
        trace = engine.run(max_steps=10)
        assert len(trace) == 1
        assert trace.deadlocked

    def test_invariant_enforced(self):
        system = producer_consumer()
        engine = BIPEngine(system, rng=2)
        with pytest.raises(AnalysisError):
            engine.run(max_steps=50,
                       invariant=lambda s: s.places[0] != "full")

    def test_deterministic_policy(self):
        system = producer_consumer()
        engine = BIPEngine(system, policy="first")
        trace = engine.run(max_steps=6)
        assert len(trace) == 6

    def test_fault_injection(self):
        system = producer_consumer()
        engine = BIPEngine(system, rng=3)

        def inject(eng, step):
            if step == 2:
                eng.inject_place("Prod", "full")

        engine.run(max_steps=3, fault_injector=inject)
        # No crash: injection is a legal state perturbation.

    def test_explore_statespace(self):
        system = producer_consumer()
        states, deadlocks = explore_statespace(system)
        assert len(states) == 4
        assert deadlocks == []


class TestDFinder:
    def test_component_invariant(self):
        c = AtomicComponent("C", ports=["p"])
        c.add_place("a")
        c.add_place("b")
        c.add_place("island")
        c.add_transition("p", "a", "b")
        assert component_invariant(c) == {"a", "b"}

    def test_trap_closure(self):
        # One transition consuming {x} producing {y}: the closure of
        # {x} must include y.
        net = [(frozenset({("C", "x")}), frozenset({("C", "y")}))]
        trap = trap_closure({("C", "x")}, net)
        assert trap == {("C", "x"), ("C", "y")}

    def test_deadlock_free_system(self):
        report = find_potential_deadlocks(producer_consumer())
        assert report.deadlock_free

    def test_real_deadlock_found(self):
        """Two components that each wait for the other: classic cycle."""
        a = AtomicComponent("A", ports=["get_x", "get_y"])
        a.add_place("start")
        a.add_place("has_x")
        a.add_transition("get_x", "start", "has_x")
        a.add_transition("get_y", "has_x", "start")
        b = AtomicComponent("B", ports=["get_y", "get_x"])
        b.add_place("start")
        b.add_place("has_y")
        b.add_transition("get_y", "start", "has_y")
        b.add_transition("get_x", "has_y", "start")
        system = BIPSystem()
        system.add_component(a)
        system.add_component(b)
        # Rendezvous: A and B must agree on both steps -- but A wants x
        # first and B wants y first: nothing can ever fire.
        system.add_connector(Connector(
            "c_x", [("A", "get_x"), ("B", "get_x")]))
        system.add_connector(Connector(
            "c_y", [("A", "get_y"), ("B", "get_y")]))
        report = find_potential_deadlocks(system)
        assert not report.deadlock_free
        # And the exact exploration confirms it at the initial state.
        _states, deadlocks = explore_statespace(system)
        assert deadlocks

    def test_reports_spurious_candidates_conservatively(self):
        """D-Finder may report unreachable configurations -- but never
        misses a reachable one (soundness)."""
        system = producer_consumer()
        report = find_potential_deadlocks(system)
        _states, exact = explore_statespace(system)
        exact_keys = {s.places for s in exact}
        assert exact_keys <= set(report.potential_deadlocks) | exact_keys


class TestMaximalProgress:
    def test_bigger_interaction_wins(self):
        """A rendezvous suppresses the lone firing of its parts."""
        a = AtomicComponent("A", ports=["p"])
        a.add_place("s")
        a.add_transition("p", "s", "s")
        b = AtomicComponent("B", ports=["q"])
        b.add_place("s")
        b.add_transition("q", "s", "s")
        system = BIPSystem()
        system.add_component(a)
        system.add_component(b)
        system.add_connector(Connector("c_solo", [("A", "p")]))
        system.add_connector(Connector(
            "c_joint", [("A", "p"), ("B", "q")]))
        rules = system.add_maximal_progress()
        assert rules
        names = {i.connector.name for i in
                 system.enabled_interactions(system.initial_state())}
        assert names == {"c_joint"}
