"""Unit tests for declarations, valuations and environments."""

import pytest

from repro.core import Declarations, EvaluationError, ModelError


@pytest.fixture
def decls():
    d = Declarations()
    d.declare_int("len", 0, 0, 6)
    d.declare_array("list", [0] * 7)
    d.declare_bool("busy")
    d.declare_const("N", 6)
    return d


class TestDeclarations:
    def test_initial(self, decls):
        v = decls.initial()
        assert v["len"] == 0
        assert v["list"] == (0,) * 7
        assert v["busy"] is False
        assert v["N"] == 6

    def test_duplicate_rejected(self, decls):
        with pytest.raises(ModelError):
            decls.declare_int("len")

    def test_empty_range_rejected(self):
        d = Declarations()
        with pytest.raises(ModelError):
            d.declare_int("x", 0, 5, 2)

    def test_init_outside_range_rejected(self):
        d = Declarations()
        with pytest.raises(EvaluationError):
            d.declare_int("x", 9, 0, 5)

    def test_index_of_unknown(self, decls):
        with pytest.raises(ModelError):
            decls.index_of("nope")

    def test_contains(self, decls):
        assert "len" in decls
        assert "nope" not in decls

    def test_merged_with(self, decls):
        other = Declarations()
        other.declare_int("x", 1)
        merged = decls.merged_with(other)
        v = merged.initial()
        assert v["len"] == 0 and v["x"] == 1

    def test_merged_with_clash(self, decls):
        other = Declarations()
        other.declare_int("len")
        with pytest.raises(ModelError):
            decls.merged_with(other)


class TestValuation:
    def test_hashable_and_eq(self, decls):
        a = decls.initial()
        b = decls.initial()
        assert a == b
        assert hash(a) == hash(b)
        c = a.assign("len", 3)
        assert c != a
        assert c["len"] == 3
        assert a["len"] == 0, "assign must not mutate"

    def test_assign_respects_bounds(self, decls):
        v = decls.initial()
        with pytest.raises(EvaluationError):
            v.assign("len", 99)

    def test_as_dict(self, decls):
        d = decls.initial().as_dict()
        assert d["busy"] is False and d["N"] == 6

    def test_get_default(self, decls):
        v = decls.initial()
        assert v.get("len") == 0
        assert v.get("nope", 42) == 42


class TestEnv:
    def test_roundtrip(self, decls):
        env = decls.initial().env()
        env["len"] = 2
        env["list"] = [1, 2, 3, 0, 0, 0, 0]
        v = env.commit()
        assert v["len"] == 2
        assert v["list"] == (1, 2, 3, 0, 0, 0, 0)

    def test_bounds_enforced(self, decls):
        env = decls.initial().env()
        with pytest.raises(EvaluationError):
            env["len"] = -1

    def test_env_is_mapping_for_expressions(self, decls):
        from repro.core import Var

        env = decls.initial().env()
        env["len"] = 4
        assert (Var("len") + 1).eval(env) == 5

    def test_keys_and_get(self, decls):
        env = decls.initial().env()
        assert "len" in env.keys()
        assert env.get("len") == 0
        assert env.get("nope") is None
