"""Tests for PTA syntax, the digital-clocks translation, the
overapproximation, and the digital simulator."""

import pytest

from repro.core import ModelError, Declarations
from repro.mdp import expected_total_reward, reachability_probability
from repro.pta import (
    PTA,
    PTANetwork,
    build_digital_mdp,
    DigitalSimulator,
    overapproximate_network,
)
from repro.ta import clk


def coin_pta(p=0.5):
    """One probabilistic step: flip -> heads/tails after exactly 1 t.u."""
    a = PTA("Coin", clocks=["x"])
    a.add_location("flip", invariant=[clk("x", "<=", 1)])
    a.add_location("heads")
    a.add_location("tails")
    a.initial_location = "flip"
    a.add_prob_edge("flip", [(p, "heads"), (1 - p, "tails")],
                    guard=[clk("x", ">=", 1)])
    net = PTANetwork("coin")
    net.add_process("C", a)
    return net.freeze()


def retry_pta(p=0.25):
    """Repeated trials, 1 time unit each, until success."""
    a = PTA("Retry", clocks=["x"])
    a.add_location("try", invariant=[clk("x", "<=", 1)])
    a.add_location("done")
    a.initial_location = "try"
    a.add_prob_edge("try", [(p, "done"), (1 - p, "try", [("x", 0)])],
                    guard=[clk("x", ">=", 1)])
    net = PTANetwork("retry")
    net.add_process("R", a)
    return net.freeze()


class TestPTASyntax:
    def test_branch_probabilities_must_sum(self):
        a = PTA("A")
        a.add_location("s")
        a.add_location("t")
        with pytest.raises(ModelError):
            a.add_prob_edge("s", [(0.5, "t")])

    def test_unknown_branch_target(self):
        a = PTA("A")
        a.add_location("s")
        with pytest.raises(ModelError):
            a.add_prob_edge("s", [(1.0, "ghost")])

    def test_unknown_branch_reset_clock(self):
        a = PTA("A", clocks=["x"])
        a.add_location("s")
        with pytest.raises(ModelError):
            a.add_prob_edge("s", [(1.0, "s", [("y", 0)])])

    def test_empty_branches(self):
        a = PTA("A")
        a.add_location("s")
        with pytest.raises(ModelError):
            a.add_prob_edge("s", [])


class TestDigitalTranslation:
    def test_coin_probability(self):
        dm = build_digital_mdp(coin_pta(0.3))
        heads = dm.location_states("C", "heads")
        v = reachability_probability(dm.mdp, heads)
        assert v[0] == pytest.approx(0.3)

    def test_retry_reaches_almost_surely(self):
        dm = build_digital_mdp(retry_pta(0.25))
        done = dm.location_states("R", "done")
        v = reachability_probability(dm.mdp, done)
        assert v[0] == pytest.approx(1.0)

    def test_expected_time_is_geometric_mean(self):
        # Each trial takes exactly 1 t.u.; expected trials 1/p.
        dm = build_digital_mdp(retry_pta(0.25))
        done = dm.location_states("R", "done")
        v = expected_total_reward(dm.mdp, done, maximize=True)
        assert v[0] == pytest.approx(4.0)

    def test_tick_reward_can_be_disabled(self):
        dm = build_digital_mdp(retry_pta(0.5), time_reward=False)
        done = dm.location_states("R", "done")
        v = expected_total_reward(dm.mdp, done, maximize=True)
        assert v[0] == pytest.approx(0.0)

    def test_rejects_open_guards(self):
        a = PTA("A", clocks=["x"])
        a.add_location("s")
        a.add_location("t")
        a.add_edge("s", "t", guard=[clk("x", "<", 2)])
        net = PTANetwork()
        net.add_process("P", a)
        with pytest.raises(ModelError):
            build_digital_mdp(net)

    def test_states_where(self):
        decls = Declarations()
        decls.declare_int("n", 0)
        a = PTA("A", clocks=[])
        a.add_location("s")
        a.add_location("t")
        a.add_edge("s", "t",
                   update=[lambda env: env.__setitem__("n", 7)])
        net = PTANetwork()
        net.declarations = decls
        net.add_process("P", a)
        dm = build_digital_mdp(net)
        hits = dm.states_where(lambda names, v, c: v["n"] == 7)
        assert len(hits) == 1

    def test_synchronised_probabilistic_edges_multiply(self):
        # Sender triggers a channel that loses with probability 0.2.
        s = PTA("S", clocks=[])
        s.add_location("go", urgent=True)
        s.add_location("sent")
        s.add_edge("go", "sent", sync=("put", "!"))
        c = PTA("C", clocks=[])
        c.add_location("empty")
        c.add_location("full")
        c.add_prob_edge("empty", [(0.8, "full"), (0.2, "empty")],
                        sync=("put", "?"))
        net = PTANetwork()
        net.add_channel("put")
        net.add_process("S", s)
        net.add_process("C", c)
        dm = build_digital_mdp(net)
        full = dm.location_states("C", "full")
        v = reachability_probability(dm.mdp, full)
        assert v[0] == pytest.approx(0.8)


class TestOverapproximation:
    def test_branches_become_edges(self):
        net = coin_pta(0.3)
        ta = overapproximate_network(net)
        process = ta.process_by_name("C")
        assert len(process.automaton.edges) == 2

    def test_safety_transfer(self):
        """Heads and tails both reachable in the overapproximation."""
        from repro.mc import EF, LocationIs, Verifier

        ta = overapproximate_network(coin_pta(0.01))
        v = Verifier(ta)
        assert v.check(EF(LocationIs("C", "heads"))).holds
        assert v.check(EF(LocationIs("C", "tails"))).holds


class TestDigitalSimulator:
    def test_coin_frequency(self):
        net = coin_pta(0.7)
        sim = DigitalSimulator(net, rng=1)
        heads = 0
        for _ in range(400):
            run = sim.run(stop=lambda names, v, c: names[0] != "flip")
            if net.location_vector_names(run.final_state.locs)[0] == \
                    "heads":
                heads += 1
        assert 0.6 < heads / 400 < 0.8

    def test_elapsed_time_counted(self):
        net = coin_pta(0.5)
        sim = DigitalSimulator(net, rng=2)
        run = sim.run(stop=lambda names, v, c: names[0] != "flip")
        assert run.elapsed == 1

    def test_max_delay_policy_waits(self):
        # With max-delay policy the retry automaton ticks to the
        # invariant bound before acting.
        net = retry_pta(1.0)
        sim = DigitalSimulator(net, policy="max-delay", rng=3)
        run = sim.run(stop=lambda names, v, c: names[0] == "done")
        assert run.elapsed == 1

    def test_bad_policy(self):
        with pytest.raises(ModelError):
            DigitalSimulator(coin_pta(), policy="warp")

    def test_max_time_stops(self):
        net = retry_pta(0.0001)
        sim = DigitalSimulator(net, rng=4)
        run = sim.run(max_time=5)
        assert run.elapsed >= 5
