"""Unit tests for the expression language."""

import pytest

from repro.core import (
    Assignment,
    BinOp,
    Const,
    EvaluationError,
    Index,
    Ite,
    UnOp,
    Var,
    conjoin,
    lift,
)


class TestEval:
    def test_const(self):
        assert Const(5).eval({}) == 5
        assert Const(True).eval({}) is True

    def test_var(self):
        assert Var("x").eval({"x": 3}) == 3

    def test_unknown_var_raises(self):
        with pytest.raises(EvaluationError):
            Var("missing").eval({"x": 3})

    def test_arithmetic(self):
        env = {"x": 7, "y": 2}
        assert BinOp("+", Var("x"), Var("y")).eval(env) == 9
        assert BinOp("-", Var("x"), Var("y")).eval(env) == 5
        assert BinOp("*", Var("x"), Var("y")).eval(env) == 14
        assert BinOp("/", Var("x"), Var("y")).eval(env) == 3
        assert BinOp("%", Var("x"), Var("y")).eval(env) == 1

    def test_c_style_division_truncates_towards_zero(self):
        assert BinOp("/", Const(-7), Const(2)).eval({}) == -3
        assert BinOp("%", Const(-7), Const(2)).eval({}) == -1

    def test_division_by_zero(self):
        with pytest.raises(EvaluationError):
            BinOp("/", Const(1), Const(0)).eval({})
        with pytest.raises(EvaluationError):
            BinOp("%", Const(1), Const(0)).eval({})

    def test_comparisons(self):
        env = {"x": 4}
        assert BinOp("<", Var("x"), Const(5)).eval(env)
        assert BinOp("<=", Var("x"), Const(4)).eval(env)
        assert not BinOp(">", Var("x"), Const(4)).eval(env)
        assert BinOp(">=", Var("x"), Const(4)).eval(env)
        assert BinOp("==", Var("x"), Const(4)).eval(env)
        assert BinOp("!=", Var("x"), Const(5)).eval(env)

    def test_boolean_short_circuit(self):
        # The right operand would raise if evaluated.
        bad = BinOp("/", Const(1), Const(0))
        assert BinOp("&&", Const(False), bad).eval({}) is False
        assert BinOp("||", Const(True), bad).eval({}) is True

    def test_min_max(self):
        assert BinOp("min", Const(3), Const(8)).eval({}) == 3
        assert BinOp("max", Const(3), Const(8)).eval({}) == 8

    def test_unary(self):
        assert UnOp("-", Const(4)).eval({}) == -4
        assert UnOp("!", Const(False)).eval({}) is True

    def test_ite(self):
        env = {"x": 1}
        e = Ite(BinOp(">", Var("x"), Const(0)), Const(10), Const(20))
        assert e.eval(env) == 10
        assert e.eval({"x": -1}) == 20

    def test_index(self):
        env = {"a": (5, 6, 7), "i": 2}
        assert Index(Var("a"), Var("i")).eval(env) == 7

    def test_index_out_of_range(self):
        with pytest.raises(EvaluationError):
            Index(Var("a"), Const(9)).eval({"a": (1, 2)})

    def test_unknown_operator_rejected(self):
        with pytest.raises(EvaluationError):
            BinOp("**", Const(2), Const(3))
        with pytest.raises(EvaluationError):
            UnOp("~", Const(2))


class TestSugar:
    def test_operator_overloads(self):
        x, y = Var("x"), Var("y")
        env = {"x": 2, "y": 5}
        assert (x + y).eval(env) == 7
        assert (x + 1).eval(env) == 3
        assert (10 - x).eval(env) == 8
        assert (x * 3).eval(env) == 6
        assert (x < y).eval(env)
        assert (x <= 2).eval(env)
        assert (y > x).eval(env)
        assert (y >= 5).eval(env)
        assert x.eq(2).eval(env)
        assert x.ne(3).eval(env)
        assert x.eq(2).and_(y.eq(5)).eval(env)
        assert x.eq(99).or_(y.eq(5)).eval(env)
        assert x.eq(99).not_().eval(env)

    def test_lift_rejects_junk(self):
        with pytest.raises(EvaluationError):
            lift("not an expression")

    def test_conjoin(self):
        assert conjoin([]).eval({}) is True
        e = conjoin([Var("a"), Var("b"), Var("c")])
        assert e.eval({"a": True, "b": True, "c": True})
        assert not e.eval({"a": True, "b": False, "c": True})


class TestVariables:
    def test_collect(self):
        e = (Var("x") + Var("y")) < Var("z")
        assert e.variables() == {"x", "y", "z"}

    def test_const_has_none(self):
        assert Const(3).variables() == set()

    def test_ite_collects_all_branches(self):
        e = Ite(Var("c"), Var("a"), Var("b"))
        assert e.variables() == {"a", "b", "c"}


class TestAssignment:
    def test_simple(self):
        env = {"x": 1, "y": 2}
        Assignment("x", Var("y") + 3).apply(env)
        assert env["x"] == 5

    def test_array_element(self):
        env = {"a": (0, 0, 0), "i": 1}
        Assignment("a", Const(9), index=Var("i")).apply(env)
        assert env["a"] == (0, 9, 0)

    def test_array_index_out_of_range(self):
        env = {"a": (0, 0)}
        with pytest.raises(EvaluationError):
            Assignment("a", Const(1), index=Const(5)).apply(env)

    def test_variables_read(self):
        a = Assignment("x", Var("y"))
        assert a.variables_read() == {"y"}
        b = Assignment("a", Var("v"), index=Var("i"))
        assert b.variables_read() == {"v", "i", "a"}
