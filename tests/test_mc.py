"""Tests for the model checker on small hand-built automata and on the
paper's train-gate example (the verification column of Section II-a)."""

import pytest

from repro.core import Declarations, QueryError
from repro.mc import (
    AF,
    AG,
    And,
    ClockPred,
    DataPred,
    Deadlock,
    EF,
    EG,
    LeadsTo,
    LocationIs,
    Not,
    Or,
    Verifier,
    forall,
)
from repro.models.traingate import make_traingate
from repro.ta import Automaton, Network, clk


def single(automaton, decls=None):
    net = Network()
    if decls is not None:
        net.declarations = decls
    net.add_process("P", automaton)
    return net


def linear_automaton():
    """s0 -> s1 -> s2, with timing: reach s2 between 2 and 5."""
    a = Automaton("A", clocks=["x"])
    a.add_location("s0", invariant=[clk("x", "<=", 3)])
    a.add_location("s1", invariant=[clk("x", "<=", 5)])
    a.add_location("s2")
    a.add_edge("s0", "s1", guard=[clk("x", ">=", 1)])
    a.add_edge("s1", "s2", guard=[clk("x", ">=", 2)])
    return a


class TestReachability:
    def test_ef_location(self):
        v = Verifier(single(linear_automaton()))
        assert v.check(EF(LocationIs("P", "s2"))).holds

    def test_ef_unreachable(self):
        a = linear_automaton()
        a.add_location("island")
        v = Verifier(single(a))
        assert not v.check(EF(LocationIs("P", "island"))).holds

    def test_ef_clock_constraint(self):
        v = Verifier(single(linear_automaton()))
        # s2 entered with x in [2, 5]; x then grows unboundedly.
        assert v.check(EF(And(LocationIs("P", "s2"),
                              ClockPred("P", clk("x", "<=", 2))))).holds
        # But never with x < 2.
        assert not v.check(
            EF(And(LocationIs("P", "s2"),
                   ClockPred("P", clk("x", "<", 2))))).holds

    def test_ag(self):
        v = Verifier(single(linear_automaton()))
        assert v.check(AG(Or(LocationIs("P", "s0"), LocationIs("P", "s1"),
                             LocationIs("P", "s2")))).holds
        assert not v.check(AG(Not(LocationIs("P", "s2")))).holds

    def test_trace_returned(self):
        v = Verifier(single(linear_automaton()))
        r = v.check(EF(LocationIs("P", "s2")))
        assert r.trace is not None
        assert len(r.trace) == 3  # initial, s1, s2
        assert r.trace[0][0] is None

    def test_data_formula(self):
        a = Automaton("A", clocks=[])
        a.add_location("s")
        a.add_edge("s", "s",
                   data_guard=lambda env: env["n"] < 3,
                   update=[lambda env: env.__setitem__("n", env["n"] + 1)])
        decls = Declarations()
        decls.declare_int("n", 0)
        v = Verifier(single(a, decls))
        from repro.core import Var
        assert v.check(EF(DataPred(Var("n").eq(3)))).holds
        assert not v.check(EF(DataPred(Var("n").eq(4)))).holds


class TestDeadlock:
    def test_obvious_deadlock(self):
        a = Automaton("A", clocks=["x"])
        a.add_location("s0", invariant=[clk("x", "<=", 3)])
        # No edges at all: time stops at x == 3.
        v = Verifier(single(a))
        assert not v.deadlock_free().holds

    def test_unbounded_idle_is_not_deadlock_free(self):
        # UPPAAL counts "no action ever enabled" as a deadlock even if
        # time can diverge.
        a = Automaton("A", clocks=["x"])
        a.add_location("s0")
        v = Verifier(single(a))
        assert not v.deadlock_free().holds

    def test_guard_window_passed(self):
        """A guard whose window can be missed: x in [2,3] but the
        invariant allows waiting to 5 -- the state has deadlocked points
        only if delaying past the window is possible without any other
        option.  Since the edge window is reachable by delaying, points
        past it (x > 3) deadlock."""
        a = Automaton("A", clocks=["x"])
        a.add_location("s0")  # no invariant: can delay past the window
        a.add_location("s1")
        a.add_edge("s0", "s1", guard=[clk("x", "<=", 3)])
        v = Verifier(single(a))
        assert not v.deadlock_free().holds

    def test_deadlock_free_loop(self):
        a = Automaton("A", clocks=["x"])
        a.add_location("s0", invariant=[clk("x", "<=", 2)])
        a.add_location("s1", invariant=[clk("x", "<=", 2)])
        a.add_edge("s0", "s1", resets=[("x", 0)])
        a.add_edge("s1", "s0", resets=[("x", 0)])
        v = Verifier(single(a))
        assert v.deadlock_free().holds

    def test_ef_deadlock_query(self):
        a = Automaton("A", clocks=[])
        a.add_location("s0")
        v = Verifier(single(a))
        assert v.check(EF(Deadlock())).holds

    def test_deadlock_atom_must_be_alone(self):
        a = Automaton("A", clocks=[])
        a.add_location("s0")
        v = Verifier(single(a))
        with pytest.raises(QueryError):
            v.check(EF(And(Deadlock(), LocationIs("P", "s0"))))


class TestLiveness:
    def _choice(self):
        """s0 can go to a 'good' sink or loop forever in 'bad'."""
        a = Automaton("A", clocks=[])
        a.add_location("s0")
        a.add_location("good")
        a.add_location("bad")
        a.add_edge("s0", "good")
        a.add_edge("s0", "bad")
        a.add_edge("bad", "bad")
        a.add_edge("good", "good")
        return a

    def test_af_fails_with_escape(self):
        v = Verifier(single(self._choice()))
        assert not v.check(AF(LocationIs("P", "good"))).holds

    def test_af_holds_when_forced(self):
        a = Automaton("A", clocks=["x"])
        a.add_location("s0", invariant=[clk("x", "<=", 2)])
        a.add_location("done")
        a.add_edge("s0", "done")
        a.add_edge("done", "done")
        v = Verifier(single(a))
        assert v.check(AF(LocationIs("P", "done"))).holds

    def test_eg(self):
        v = Verifier(single(self._choice()))
        assert v.check(EG(Not(LocationIs("P", "good")))).holds
        assert not v.check(EG(LocationIs("P", "good"))).holds

    def test_leadsto(self):
        a = Automaton("A", clocks=[])
        a.add_location("idle")
        a.add_location("req")
        a.add_location("ack")
        a.add_edge("idle", "req")
        a.add_edge("req", "ack")
        a.add_edge("ack", "idle")
        v = Verifier(single(a))
        assert v.check(LeadsTo(LocationIs("P", "req"),
                               LocationIs("P", "ack"))).holds
        # Like UPPAAL, leads-to assumes action progress: a run idling
        # forever in `idle` (which has an enabled action) is not a
        # counterexample, so this forced cycle satisfies the property.
        assert v.check(LeadsTo(LocationIs("P", "idle"),
                               LocationIs("P", "req"))).holds

    def test_leadsto_counterexample_detour(self):
        a = self._choice()
        v = Verifier(single(a))
        assert not v.check(LeadsTo(LocationIs("P", "s0"),
                                   LocationIs("P", "good"))).holds


class TestTrainGate:
    """The three verification properties of the paper, Section II-a."""

    @pytest.fixture(scope="class")
    def verifier(self):
        return Verifier(make_traingate(3))

    def test_safety_mutual_exclusion(self, verifier):
        n = 3
        safety = AG(forall(
            [(i, j) for i in range(n) for j in range(n)],
            lambda ij: Not(And(LocationIs(f"Train({ij[0]})", "Cross"),
                               LocationIs(f"Train({ij[1]})", "Cross")))
            if ij[0] != ij[1] else
            Not(And(LocationIs("Gate", "Free"),
                    LocationIs(f"Train({ij[0]})", "Cross")))))
        assert verifier.check(safety).holds

    def test_liveness_every_train_crosses(self, verifier):
        for i in range(3):
            q = LeadsTo(LocationIs(f"Train({i})", "Appr"),
                        LocationIs(f"Train({i})", "Cross"))
            assert verifier.check(q).holds, f"train {i}"

    def test_no_deadlock(self, verifier):
        assert verifier.deadlock_free().holds

    def test_some_train_can_cross(self, verifier):
        assert verifier.check(EF(LocationIs("Train(0)", "Cross"))).holds

    def test_queue_can_fill(self, verifier):
        assert verifier.check(
            EF(DataPred(lambda env: env["len"] == 2))).holds


class TestSupInf:
    def test_sup_inf_queue_length(self):
        verifier = Verifier(make_traingate(2))
        assert verifier.sup(lambda val: val["len"]) == 2
        assert verifier.inf(lambda val: val["len"]) == 0
