"""Second edge-case sweep: stochastic broadcast/blocked outputs,
D-Finder bounds, modest property variants, ECDAR composition corners,
and miscellaneous error paths."""

import pytest

from repro.core import ModelError, QueryError
from repro.modest import Emin, Pmin, Property, Reach, mcpta, mctau, modes
from repro.smc import StochasticSimulator
from repro.ta import Automaton, Network, clk


class TestStochasticSync:
    def test_broadcast_wakes_all_receivers(self):
        tx = Automaton("T", clocks=[])
        tx.add_location("a", rate=5.0)
        tx.add_location("b")
        tx.add_edge("a", "b", sync=("beat", "!"))
        net = Network()
        net.add_channel("beat", broadcast=True)
        net.add_process("T", tx)
        for name in ("R1", "R2"):
            rx = Automaton(name, clocks=[])
            rx.add_location("w")
            rx.add_location("h")
            rx.add_edge("w", "h", sync=("beat", "?"))
            net.add_process(name, rx)
        sim = StochasticSimulator(net.freeze(), rng=1)
        _delay, _desc, state = sim.step(sim.initial())
        assert sim.network.location_vector_names(state.locs) == (
            "b", "h", "h")

    def test_blocked_binary_output_is_noop(self):
        """An output with no ready receiver cannot happen: the step
        advances time but changes nothing."""
        tx = Automaton("T", clocks=[])
        tx.add_location("a", rate=5.0)
        tx.add_location("b")
        tx.add_edge("a", "b", sync=("msg", "!"))
        lonely = Automaton("L", clocks=[])
        lonely.add_location("x")  # never receives
        net = Network()
        net.add_channel("msg")
        net.add_process("T", tx)
        net.add_process("L", lonely)
        sim = StochasticSimulator(net.freeze(), rng=2)
        delay, description, state = sim.step(sim.initial())
        assert description is None
        assert sim.network.location_vector_names(state.locs)[0] == "a"

    def test_receiver_clock_window_respected(self):
        """A receiver whose clock guard has expired does not sync."""
        tx = Automaton("T", clocks=[])
        tx.add_location("a", rate=0.01)  # takes its time
        tx.add_location("b")
        tx.add_edge("a", "b", sync=("msg", "!"))
        rx = Automaton("R", clocks=["y"])
        rx.add_location("w")
        rx.add_location("h")
        rx.add_edge("w", "h", guard=[clk("y", "<=", 0)],
                    sync=("msg", "?"))
        net = Network()
        net.add_channel("msg")
        net.add_process("T", tx)
        net.add_process("R", rx)
        sim = StochasticSimulator(net.freeze(), rng=3)
        # The sender's exponential delay virtually surely exceeds 0.
        _delay, description, _state = sim.step(sim.initial())
        assert description is None  # receiver window closed: no-op


class TestDFinderBounds:
    def test_configuration_bound(self):
        from repro.bip import AtomicComponent, BIPSystem, Connector
        from repro.bip.dfinder import find_potential_deadlocks

        system = BIPSystem()
        for k in range(3):
            c = AtomicComponent(f"C{k}", ports=["p"])
            for i in range(10):
                c.add_place(f"s{i}")
            for i in range(9):
                c.add_transition("p", f"s{i}", f"s{i + 1}")
            system.add_component(c)
            system.add_connector(Connector(f"conn{k}", [(f"C{k}", "p")]))
        from repro.core.errors import SearchLimitError

        with pytest.raises(SearchLimitError):
            find_potential_deadlocks(system, max_configurations=10)


class TestModestPropertyVariants:
    SRC = """
        bool done = false;
        process P() {
          clock x;
          invariant(x <= 3) when(x >= 1) finish {= done = true =}
        }
        P()
    """

    @staticmethod
    def _done(names, valuation, clocks):
        return bool(valuation["done"])

    def test_pmin(self):
        results = mcpta(self.SRC, [Pmin("p", self._done)])
        assert results["p"] == pytest.approx(1.0)

    def test_emin(self):
        results = mcpta(self.SRC, [Emin("t", self._done)])
        assert results["t"] == pytest.approx(1.0)  # earliest finish

    def test_reach_in_mcpta(self):
        results = mcpta(self.SRC, [Reach("r", self._done)])
        assert results["r"] is True

    def test_unknown_property_type_rejected(self):
        class Weird(Property):
            pass

        with pytest.raises(QueryError):
            mcpta(self.SRC, [Weird("w", self._done)])
        with pytest.raises(QueryError):
            mctau(self.SRC, [Weird("w", self._done)])

    def test_modes_min_delay_policy(self):
        results = modes(self.SRC, [Emin("t", self._done)], runs=50,
                        rng=5, policy="min-delay")
        assert results["t"].mean == pytest.approx(1.0)

    def test_load_rejects_junk(self):
        with pytest.raises(QueryError):
            mcpta(42, [])


class TestECDARCorners:
    def test_compose_keeps_unmatched_inputs(self):
        from repro.ecdar import compose

        left = Automaton("L", clocks=[])
        left.add_location("s")
        left.add_edge("s", "s", label="shared")
        right = Automaton("R", clocks=[])
        right.add_location("s")
        right.add_edge("s", "s", label="shared")
        right.add_edge("s", "s", label="extra_in")
        _network, inputs, outputs = compose(
            left, ([], ["shared"]),
            right, (["shared", "extra_in"], []))
        assert inputs == ["extra_in"]
        assert outputs == ["shared"]

    def test_consistency_of_pure_sink(self):
        from repro.ecdar import check_consistency

        spec = Automaton("S", clocks=[])
        spec.add_location("s")  # no invariant: time diverges happily
        assert check_consistency(spec, [], ["out"])


class TestMdpBoundedOnDigital:
    def test_bounded_steps_on_pta(self):
        from repro.mdp import bounded_reachability
        from repro.pta import PTA, PTANetwork, build_digital_mdp

        a = PTA("A", clocks=["x"])
        a.add_location("s", invariant=[clk("x", "<=", 1)])
        a.add_location("t")
        a.add_edge("s", "t", guard=[clk("x", ">=", 1)])
        net = PTANetwork()
        net.add_process("A", a)
        digital = build_digital_mdp(net)
        target = digital.location_states("A", "t")
        # Needs two MDP steps: tick then the edge.
        assert bounded_reachability(digital.mdp, target, 1)[0] == 0.0
        assert bounded_reachability(digital.mdp, target, 2)[0] == 1.0
