"""Tests for the result-table formatter used by the bench harness."""

import pytest

from repro.core import ResultTable, format_number


class TestFormatNumber:
    def test_none_is_na(self):
        assert format_number(None) == "n/a"

    def test_booleans(self):
        assert format_number(True) == "true"
        assert format_number(False) == "false"

    def test_integers(self):
        assert format_number(42) == "42"

    def test_strings_pass_through(self):
        assert format_number("[0, 1]") == "[0, 1]"

    def test_zero(self):
        assert format_number(0.0) == "0"

    def test_scientific_for_small(self):
        assert "e-04" in format_number(4.233e-4)

    def test_plain_for_medium(self):
        assert format_number(33.473) == "33.47"


class TestResultTable:
    def test_render_alignment(self):
        table = ResultTable("a", "bbbb")
        table.add_row(1, 2)
        table.add_row(100, 20000)
        lines = table.render().splitlines()
        assert len({len(line) for line in lines}) == 1  # aligned

    def test_title(self):
        table = ResultTable("x", title="My Table")
        table.add_row(1)
        assert table.render().startswith("My Table")

    def test_cell_count_checked(self):
        table = ResultTable("a", "b")
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_values_formatted(self):
        table = ResultTable("p")
        table.add_row(4.233e-4)
        assert "4.233e-04" in table.render()

    def test_print_smoke(self, capsys):
        table = ResultTable("a")
        table.add_row(True)
        table.print()
        assert "true" in capsys.readouterr().out
