"""The cross-formalism model linter and the differential gate.

Per-rule positive fixtures are deliberately *seeded-bad* models —
some built through the normal constructors, some mutated afterwards to
mimic the hand edits the constructors cannot see.  Negative fixtures
are the bundled catalogue, which must lint clean (modulo its documented
suppressions).
"""

from __future__ import annotations

import json

import pytest

from repro.bip import AtomicComponent, BIPSystem, Connector
from repro.core.distributions import (
    Dirac,
    Exponential,
    Uniform,
    Weighted,
    validate_interval,
    validate_rate,
    validate_weights,
)
from repro.core.errors import EvaluationError, ModelError
from repro.core.expressions import BinOp, Const
from repro.lint import (
    Finding,
    LintReport,
    lint_model,
    lint_models,
    parse_suppression,
    suppression_matches,
)
from repro.lint.catalogue import CATALOGUE, lint_catalogue
from repro.lint.differential import run_differential
from repro.mdp import MDP
from repro.modest.flatten import _fold_const, flatten_model
from repro.modest.parser import parse_modest
from repro.obs.metrics import collecting
from repro.pta import PTA, Branch
from repro.ta import Automaton, Network, clk

# ---------------------------------------------------------------------------
# helpers


def rules_of(report_or_findings):
    findings = getattr(report_or_findings, "findings", report_or_findings)
    return {f.rule for f in findings}


def assert_flags(model, rule, name="fixture"):
    report = lint_model(model, name=name)
    assert rule in rules_of(report), \
        f"expected {rule}, got {sorted(rules_of(report))}"
    return report


# ---------------------------------------------------------------------------
# findings / suppressions plumbing


class TestFindings:
    def test_severity_is_validated(self):
        with pytest.raises(ModelError):
            Finding("r", "fatal", "m", "w", "msg")

    def test_parse_suppression(self):
        assert parse_suppression("clock-unused") == ("clock-unused", None)
        assert parse_suppression("clock-unused@P/*") == \
            ("clock-unused", "P/*")
        for bad in ("", "@x", "rule@"):
            with pytest.raises(ModelError):
                parse_suppression(bad)

    def test_suppression_matching(self):
        finding = Finding("clock-unused", "warning", "m", "Train/x", "msg")
        assert suppression_matches("clock-unused", finding)
        assert suppression_matches("clock-unused@Train/*", finding)
        assert suppression_matches("*@Train/x", finding)
        assert not suppression_matches("clock-unused@Gate/*", finding)
        assert not suppression_matches("other-rule", finding)

    def test_exit_code_thresholds(self):
        report = LintReport([
            Finding("a", "info", "m", "w", "msg"),
            Finding("b", "warning", "m", "w", "msg"),
        ])
        assert report.exit_code("info") == 1
        assert report.exit_code("warning") == 1
        assert report.exit_code("error") == 0
        assert report.exit_code("never") == 0

    def test_suppressed_findings_do_not_fail(self):
        report = LintReport([Finding("a", "error", "m", "w", "msg",
                                     suppressed_by="a")])
        assert report.exit_code("info") == 0
        assert report.counts() == {"info": 0, "warning": 0, "error": 0,
                                   "suppressed": 1}

    def test_json_document_schema(self):
        report = LintReport(
            [Finding("a", "error", "m", "w", "msg", suppressed_by="a@w")],
            models=["m"], meta={"k": 1})
        doc = json.loads(report.to_json())
        assert doc["schema"] == "repro.lint/1"
        assert doc["models"] == ["m"]
        assert doc["summary"]["suppressed"] == 1
        assert doc["findings"][0]["suppressed_by"] == "a@w"
        assert doc["meta"] == {"k": 1}


class TestSuppressionRoundTrip:
    def _noisy(self):
        ta = Automaton("Noisy", clocks=["x"])
        ta.add_location("init")
        ta.add_edge("init", "init")
        return ta

    def test_model_carried_suppressions(self):
        ta = self._noisy()
        assert "clock-unused" in rules_of(lint_model(ta))
        ta.lint_suppress = ("clock-unused@Noisy/x",)
        report = lint_model(ta)
        assert not report.unsuppressed()
        waived = report.suppressed()
        assert [f.suppressed_by for f in waived] == ["clock-unused@Noisy/x"]
        # The waiver survives the JSON round trip for the CI artifact.
        doc = json.loads(report.to_json())
        assert doc["findings"][0]["suppressed_by"] == "clock-unused@Noisy/x"

    def test_explicit_suppressions_compose(self):
        report = lint_model(self._noisy(), suppress=("clock-unused",))
        assert not report.unsuppressed()

    def test_lint_models_folds_and_applies_per_entry_patterns(self):
        clean = Automaton("Clean")
        clean.add_location("a")
        clean.add_edge("a", "a")
        report = lint_models([
            ("clean", clean),
            ("noisy", self._noisy(), ("clock-unused",)),
        ])
        assert report.models == ["clean", "noisy"]
        assert not report.unsuppressed()
        assert len(report.suppressed()) == 1


# ---------------------------------------------------------------------------
# TA / PTA rules


class TestTARules:
    def test_clock_unused(self):
        ta = Automaton("T", clocks=["x"])
        ta.add_location("a")
        ta.add_edge("a", "a")
        assert_flags(ta, "clock-unused")

    def test_clock_never_reset(self):
        ta = Automaton("T", clocks=["x"])
        ta.add_location("a")
        ta.add_edge("a", "a", guard=[clk("x", ">=", 1)])
        assert_flags(ta, "clock-never-reset")

    def test_clock_unknown(self):
        ta = Automaton("T", clocks=["x"])
        ta.add_location("a")
        ta.add_edge("a", "a", guard=[clk("y", "<", 5)],
                    resets=[("x", 0)])
        assert_flags(ta, "clock-unknown")

    def test_ta_clock_unbounded(self):
        ta = Automaton("T", clocks=["x"])
        ta.add_location("a")
        ta.add_location("b")
        ta.add_edge("a", "b", guard=[clk("x", ">", 3)], resets=[("x", 0)])
        report = assert_flags(ta, "ta-clock-unbounded")
        finding = next(f for f in report.findings
                       if f.rule == "ta-clock-unbounded")
        assert finding.severity == "warning"
        assert "T/x" in finding.where

    def test_ta_clock_unbounded_quiet_with_invariant(self):
        ta = Automaton("T", clocks=["x"])
        ta.add_location("a", invariant=[clk("x", "<=", 5)])
        ta.add_location("b")
        ta.add_edge("a", "b", guard=[clk("x", ">", 3)], resets=[("x", 0)])
        report = lint_model(ta, name="fixture")
        assert "ta-clock-unbounded" not in rules_of(report)

    def test_ta_clock_unbounded_quiet_with_diagonal(self):
        ta = Automaton("T", clocks=["x", "y"])
        ta.add_location("a", invariant=[clk("y", "<=", 9)])
        ta.add_location("b")
        ta.add_edge("a", "b", guard=[clk("x", ">", 1, other="y")],
                    resets=[("x", 0), ("y", 0)])
        report = lint_model(ta, name="fixture")
        assert "ta-clock-unbounded" not in rules_of(report)

    def test_edge_contradiction(self):
        ta = Automaton("T", clocks=["x"])
        ta.add_location("a", invariant=[clk("x", "<=", 2)])
        ta.add_location("b")
        ta.add_edge("a", "b", guard=[clk("x", ">=", 5)],
                    resets=[("x", 0)])
        assert_flags(ta, "edge-contradiction")

    def test_edge_target_contradiction(self):
        ta = Automaton("T", clocks=["x"])
        ta.add_location("a")
        ta.add_location("b", invariant=[clk("x", "<=", 2)])
        ta.add_edge("a", "b", resets=[("x", 5)])
        ta.add_edge("b", "a", resets=[("x", 0)])
        assert_flags(ta, "edge-target-contradiction")

    def test_satisfiable_edges_are_clean(self):
        ta = Automaton("T", clocks=["x"])
        ta.add_location("a", invariant=[clk("x", "<=", 5)])
        ta.add_location("b", invariant=[clk("x", "<=", 2)])
        ta.add_edge("a", "b", guard=[clk("x", ">=", 1)],
                    resets=[("x", 0)])
        ta.add_edge("b", "a")
        report = lint_model(ta)
        assert "edge-contradiction" not in rules_of(report)
        assert "edge-target-contradiction" not in rules_of(report)

    def test_location_unreachable(self):
        ta = Automaton("T")
        ta.add_location("a")
        ta.add_location("island")
        ta.add_edge("a", "a")
        ta.add_edge("island", "a")
        assert_flags(ta, "location-unreachable")

    def test_urgency_misuse_and_timelock(self):
        ta = Automaton("T", clocks=["x"])
        ta.add_location("a")
        ta.add_location("u", urgent=True, invariant=[clk("x", "<=", 1)])
        ta.add_location("c", committed=True)
        ta.add_edge("a", "u", resets=[("x", 0)])
        ta.add_edge("u", "c")
        report = lint_model(ta)
        assert "urgency-misuse" in rules_of(report)    # invariant on u
        assert "urgency-timelock" in rules_of(report)  # c has no exit

    def test_invariant_lower_bound_and_initial_violation(self):
        ta = Automaton("T", clocks=["x"])
        ta.add_location("a", invariant=[clk("x", ">=", 1)])
        ta.add_edge("a", "a", resets=[("x", 0)])
        report = lint_model(ta)
        assert "invariant-lower-bound" in rules_of(report)
        assert "invariant-initial-violated" in rules_of(report)

    def test_rate_invalid_cites_the_distribution_validator(self):
        ta = Automaton("T", clocks=["x"])
        ta.add_location("a", rate=-2.0)
        ta.add_edge("a", "a", resets=[("x", 0)])
        ta.locations["a"].invariant = ()
        report = assert_flags(ta, "rate-invalid")
        finding = [f for f in report.findings if f.rule == "rate-invalid"][0]
        # Same wording as Exponential(-2), because it IS the same check.
        with pytest.raises(ModelError) as err:
            Exponential(-2.0)
        assert str(err.value) in finding.message

    def test_rate_unused_under_bounded_invariant(self):
        ta = Automaton("T", clocks=["x"])
        ta.add_location("a", invariant=[clk("x", "<=", 3)], rate=0.5)
        ta.add_edge("a", "a", resets=[("x", 0)])
        assert_flags(ta, "rate-unused")

    def test_prob_branch_rules_on_mutated_edge(self):
        pta = PTA("P", clocks=["x"])
        pta.add_location("a")
        pta.add_location("b")
        edge = pta.add_prob_edge(
            "a", [Branch(0.5, "a", resets=[("x", 0)]), Branch(0.5, "b")])
        pta.add_edge("b", "a")
        assert "prob-branch-invalid" not in rules_of(lint_model(pta))
        # A hand edit after construction breaks the distribution — the
        # constructor can no longer defend, the linter must.
        edge.branches[0].probability = 0.4
        assert_flags(pta, "prob-branch-invalid")
        edge.branches[0].probability = 0.0
        edge.branches[1].probability = 1.0
        assert_flags(pta, "prob-branch-dead")

    def test_channel_rules(self):
        def talker(sync):
            ta = Automaton(f"T{sync}")
            ta.add_location("a")
            ta.add_edge("a", "a", sync=sync)
            return ta

        net = Network("chans")
        net.add_channel("used")
        net.add_channel("idle")
        net.add_channel("b", broadcast=True)
        net.add_process("P", talker(("used", "!")))
        net.add_process("Q", talker(("undeclared", "?")))
        net.add_process("R", talker(("b", "!")))
        report = lint_model(net)
        rules = rules_of(report)
        assert "channel-undeclared" in rules     # Q's channel
        assert "channel-unused" in rules         # idle
        assert "rendezvous-unmatched" in rules   # used! has no receiver
        assert "broadcast-no-receiver" in rules  # b! heard by nobody

    def test_matched_channels_are_clean(self):
        net = Network("ok")
        net.add_channel("go")
        sender = Automaton("S")
        sender.add_location("a")
        sender.add_edge("a", "a", sync=("go", "!"))
        receiver = Automaton("R")
        receiver.add_location("a")
        receiver.add_edge("a", "a", sync=("go", "?"))
        net.add_process("S", sender)
        net.add_process("R", receiver)
        assert not rules_of(lint_model(net)) & {
            "channel-undeclared", "channel-unused",
            "rendezvous-unmatched", "broadcast-no-receiver"}


# ---------------------------------------------------------------------------
# BIP rules


class TestBIPRules:
    def _component(self, name="C", port="p"):
        comp = AtomicComponent(name, ports=[port])
        comp.add_place("s0")
        comp.add_place("s1")
        comp.add_transition(port, "s0", "s1")
        comp.add_transition(port, "s1", "s0")
        return comp

    def test_dead_interaction(self):
        system = BIPSystem("sys")
        comp = AtomicComponent("C", ports=["p", "q"])
        comp.add_place("s0")
        comp.add_transition("p", "s0", "s0")
        system.add_component(comp)
        system.add_connector(Connector("link", [("C", "q")]))
        assert_flags(system, "bip-dead-interaction")

    def test_port_unconnected_and_unused(self):
        system = BIPSystem("sys")
        comp = AtomicComponent("C", ports=["p", "ghost"])
        comp.add_place("s0")
        comp.add_transition("p", "s0", "s0")
        system.add_component(comp)
        report = lint_model(system)
        assert "bip-port-unconnected" in rules_of(report)  # p
        assert "bip-port-unused" in rules_of(report)       # ghost

    def test_place_unreachable(self):
        system = BIPSystem("sys")
        comp = self._component()
        comp.add_place("limbo")
        system.add_component(comp)
        system.add_connector(Connector("link", [("C", "p")]))
        assert_flags(system, "bip-place-unreachable")

    def test_priority_shadowed(self):
        system = BIPSystem("sys")
        system.add_component(self._component("A"))
        system.add_component(self._component("B", port="q"))
        a = Connector("ca", [("A", "p")])
        b = Connector("cb", [("B", "q")])
        system.add_connector(a)
        system.add_connector(b)
        system.add_priority("ca", "cb")
        system.add_priority("cb", "ca")
        assert_flags(system, "bip-priority-shadowed")

    def test_well_formed_system_is_clean(self):
        system = BIPSystem("sys")
        system.add_component(self._component())
        system.add_connector(Connector("link", [("C", "p")]))
        assert not lint_model(system).findings


# ---------------------------------------------------------------------------
# MDP rules


class TestMDPRules:
    def _chain(self):
        mdp = MDP("m")
        a, b = mdp.add_state(), mdp.add_state(labels=["goal"])
        mdp.add_action(a, [(1.0, b)], label="step")
        mdp.add_action(b, [(1.0, b)], label="stay")
        return mdp, a, b

    def test_prob_invalid_after_hand_edit(self):
        mdp, a, _b = self._chain()
        # add_action validates; a post-construction edit is the attack.
        label, pairs, reward = mdp._actions[a][0]
        mdp._actions[a][0] = (label, ((pairs[0][0], 0.5),), reward)
        assert_flags(mdp, "mdp-prob-invalid")

    def test_target_invalid(self):
        mdp, a, _b = self._chain()
        mdp._actions[a][0] = ("step", ((7, 1.0),), 0.0)
        assert_flags(mdp, "mdp-target-invalid")

    def test_reward_trap(self):
        mdp, _a, b = self._chain()
        mdp._actions[b][0] = ("stay", ((b, 1.0),), 2.0)
        report = assert_flags(mdp, "mdp-reward-trap")
        assert f"state[{b}]" in [f.where for f in report.findings]

    def test_absorbing_without_reward_is_clean(self):
        mdp, _a, _b = self._chain()
        assert "mdp-reward-trap" not in rules_of(lint_model(mdp))

    def test_state_unreachable(self):
        mdp, _a, _b = self._chain()
        orphan = mdp.add_state()
        mdp.add_action(orphan, [(1.0, orphan)])
        assert_flags(mdp, "mdp-state-unreachable")

    def test_label_dangling(self):
        mdp, _a, _b = self._chain()
        mdp.labels["goal"].add(99)
        assert_flags(mdp, "mdp-label-dangling")


# ---------------------------------------------------------------------------
# MODEST rules


class TestModestRules:
    def test_shadowed_decl(self):
        report = lint_model("""
            int n = 1;
            process P() { int n = 2; tau {= n = 3 =}; stop }
            par { :: P() }
        """, name="shadow")
        assert "modest-shadowed-decl" in rules_of(report)

    def test_unused_decl(self):
        report = lint_model("""
            int dead = 0;
            process P() { tau; stop }
            par { :: P() }
        """, name="dead")
        assert "modest-unused-decl" in rules_of(report)

    def test_write_only_observables_are_not_flagged(self):
        # Property predicates read verdict variables from outside the
        # model, so write-only variables are legitimate.
        report = lint_model("""
            bool ok = false;
            process P() { tau {= ok = true =}; stop }
            par { :: P() }
        """, name="observable")
        assert "modest-unused-decl" not in rules_of(report)

    def test_undeclared_var(self):
        report = lint_model("""
            process P() { when(phantom > 0) tau; stop }
            par { :: P() }
        """, name="phantom")
        assert "modest-undeclared-var" in rules_of(report)

    def test_unused_process(self):
        report = lint_model("""
            process P() { tau; stop }
            process Q() { tau; stop }
            par { :: P() }
        """, name="unused-proc")
        assert "modest-unused-process" in rules_of(report)

    def test_palt_weights_on_mutated_ast(self):
        model = parse_modest("""
            process P() { tau palt { :1: {==} :1: {==} }; stop }
            par { :: P() }
        """)
        assert "modest-palt-weights" not in rules_of(
            lint_model(model, name="ok"))
        prefix = model.processes["P"].body.statements[0]
        prefix.branches[0].weight = -1
        assert "modest-palt-weights" in rules_of(
            lint_model(model, name="bad"))

    def test_flatten_rules_run_after_ast_rules(self):
        # A clean AST whose flattened PTA violates a TA rule: the
        # contradiction only exists at the network level.
        report = lint_model("""
            process P() {
              clock x;
              invariant(x <= 1) when(x >= 5) tau; stop
            }
            par { :: P() }
        """, name="deep")
        assert "edge-contradiction" in rules_of(report)


# ---------------------------------------------------------------------------
# satellite fixes: _fold_const narrowing + orphan pruning


class TestFlattenFixes:
    def test_fold_const_swallows_only_evaluation_errors(self):
        assert _fold_const(BinOp("/", Const(1), Const(0)), {}) is None

        class Broken:
            def eval(self, env):
                raise RuntimeError("AST bug, must propagate")

        with pytest.raises(RuntimeError):
            _fold_const(Broken(), {})

    def test_evaluation_error_is_the_contract(self):
        with pytest.raises(EvaluationError):
            BinOp("/", Const(1), Const(0)).eval({})

    def test_flatten_prunes_orphan_exit_location(self):
        network = flatten_model(parse_modest("""
            process P() { clock x; do { :: when(x >= 1) tau {= x = 0 =} } }
            par { :: P() }
        """))
        for process in network.processes:
            automaton = process.automaton
            touched = {automaton.initial_location}
            for edge in automaton.edges:
                touched.add(edge.source)
                touched.add(edge.target)
            assert set(automaton.locations) <= touched
        assert "location-unreachable" not in rules_of(
            lint_model(network, name="looping"))


# ---------------------------------------------------------------------------
# distribution parameter validation (shared with the lint rules)


class TestDistributionValidators:
    def test_validate_rate(self):
        assert validate_rate(2) == 2.0
        for bad in (0, -1, float("nan"), float("inf"), "fast", None):
            with pytest.raises(ModelError):
                validate_rate(bad)

    def test_validate_interval(self):
        assert validate_interval(1, 2) == (1.0, 2.0)
        for low, high in ((2, 1), (-1, 1), (float("nan"), 1),
                          (0, float("nan")), (float("inf"), float("inf"))):
            with pytest.raises(ModelError):
                validate_interval(low, high)
        # An unbounded upper end stays legal (delay intervals use it).
        assert validate_interval(0, float("inf")) == (0.0, float("inf"))

    def test_validate_weights(self):
        assert validate_weights([1, 0, 2]) == [1.0, 0.0, 2.0]
        for bad in ([1, -1], [float("nan")], [float("inf")], [0, 0], []):
            with pytest.raises(ModelError):
                validate_weights(bad)

    def test_constructors_reject_non_finite_parameters(self):
        with pytest.raises(ModelError):
            Exponential(float("nan"))
        with pytest.raises(ModelError):
            Uniform(0, float("nan"))
        with pytest.raises(ModelError):
            Dirac(float("inf"))
        with pytest.raises(ModelError):
            Weighted([("a", float("inf"))])

    def test_weighted_still_normalises(self):
        w = Weighted([("a", 1), ("b", 0), ("c", 3)])
        assert w.outcomes == ("a", "c")
        assert w.probabilities == (0.25, 0.75)


# ---------------------------------------------------------------------------
# the bundled catalogue must lint clean


class TestCatalogueSweep:
    def test_every_bundled_model_lints_clean(self):
        report = lint_catalogue()
        assert not report.unsuppressed(), report.format()
        # Only the documented waivers fire.
        assert {f.rule for f in report.suppressed()} <= {"mdp-reward-trap"}
        assert report.meta["suppressions"]["brp-2-digital"]["reason"]

    def test_catalogue_names_are_unique(self):
        names = [entry.name for entry in CATALOGUE]
        assert len(names) == len(set(names))

    def test_unknown_name_is_rejected(self):
        with pytest.raises(ModelError):
            lint_catalogue(["no-such-model"])

    def test_lint_counters_flow(self):
        with collecting() as collector:
            lint_catalogue(["fischer-3", "coffee-spec"])
        counters = collector.snapshot()["counters"]
        assert counters["lint.models"] == 2
        assert counters["lint.errors"] == 0


# ---------------------------------------------------------------------------
# differential gate


class TestDifferential:
    def test_quick_pool_agrees(self):
        with collecting() as collector:
            report = run_differential(quick=True)
        assert not report.findings, report.format()
        rows = report.meta["differential"]
        assert all(row["agree"] for row in rows)
        checks = {row["check"] for row in rows}
        assert checks == {"modest-backends", "mc-vs-reference",
                          "mdp-vs-reference"}
        counters = collector.snapshot()["counters"]
        assert counters["lint.differential.checks"] == len(rows)
        assert counters["lint.differential.disagreements"] == 0

    def test_disagreement_becomes_error_finding(self):
        from repro.lint.differential import _Gate
        gate = _Gate()
        gate.record("modest-backends", "m", "pmax", False, "divergence")
        report = gate.report()
        assert report.exit_code("error") == 1
        finding = report.findings[0]
        assert finding.rule == "differential-disagreement"
        assert finding.where == "modest-backends/pmax"


# ---------------------------------------------------------------------------
# CLI


class TestCLI:
    def test_list(self, capsys):
        from repro.lint.__main__ import main
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fischer-3" in out and "brp-2-digital" in out

    def test_clean_subset_exits_zero(self, capsys, tmp_path):
        from repro.lint.__main__ import main
        json_path = tmp_path / "findings.json"
        obs_path = tmp_path / "metrics.json"
        code = main(["fischer-3", "coffee-spec",
                     "--json", str(json_path),
                     "--obs-report", str(obs_path)])
        assert code == 0
        doc = json.loads(json_path.read_text())
        assert doc["schema"] == "repro.lint/1"
        assert doc["summary"]["models"] == 2
        obs = json.loads(obs_path.read_text())
        assert obs["metrics"]["counters"]["lint.models"] == 2

    def test_unknown_model_exits_two(self, capsys):
        from repro.lint.__main__ import main
        assert main(["definitely-not-a-model"]) == 2

    def test_fail_on_info_catches_suppressed_free_infos(self, capsys):
        from repro.lint.__main__ import main
        # The digital MDP entry only has suppressed findings, so even
        # --fail-on info stays clean.
        assert main(["brp-2-digital", "--fail-on", "info"]) == 0
