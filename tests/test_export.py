"""Tests for the DOT and UPPAAL XML exporters."""

import xml.etree.ElementTree as ET

import pytest

from repro.export import (
    automaton_to_dot,
    bip_to_dot,
    export_network,
    lts_to_dot,
    network_to_dot,
)
from repro.models.brp import make_brp
from repro.models.busspec import make_bus_spec
from repro.models.dala import make_dala
from repro.models.traingate import make_train, make_traingate


def parse_xml(text):
    """Parse exported UPPAAL XML (skipping the DOCTYPE line)."""
    lines = [line for line in text.splitlines()
             if not line.startswith("<!DOCTYPE")
             and not line.startswith("<?xml")]
    return ET.fromstring("\n".join(lines))


class TestDot:
    def test_automaton_dot_structure(self):
        dot = automaton_to_dot(make_train(0, 2))
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert '"Safe"' in dot and '"Cross"' in dot
        assert "appr_0!" in dot

    def test_invariants_in_labels(self):
        dot = automaton_to_dot(make_train(0, 2))
        assert "x <= 20" in dot

    def test_network_dot_has_clusters(self):
        dot = network_to_dot(make_traingate(2))
        assert dot.count("subgraph") == 3  # 2 trains + gate
        assert "Train(0)" in dot

    def test_prob_edges_rendered_with_hub(self):
        from repro.pta import overapproximate_network  # noqa: F401

        net = make_brp(2, 1, 1)
        channel = net.process_by_name("ChannelK").automaton
        dot = automaton_to_dot(channel)
        assert "palt_" in dot
        assert "0.98" in dot

    def test_lts_dot(self):
        dot = lts_to_dot(make_bus_spec(1))
        assert "subscribe?" in dot
        assert "deliver_a!" in dot

    def test_bip_dot(self):
        dot = bip_to_dot(make_dala(counter_bound=2))
        assert "cluster_functional/NDD".replace("/", "") in \
            dot.replace("/", "") or "functional" in dot
        assert "diamond" in dot      # rendezvous connectors
        assert "triangle" in dot     # the broadcast refresh

    def test_balanced_braces(self):
        for dot in (automaton_to_dot(make_train(0, 2)),
                    network_to_dot(make_traingate(2)),
                    lts_to_dot(make_bus_spec(1)),
                    bip_to_dot(make_dala(counter_bound=2))):
            assert dot.count("{") == dot.count("}")


class TestUppaalXml:
    @pytest.fixture(scope="class")
    def xml_root(self):
        network = make_traingate(2)
        return parse_xml(export_network(
            network, queries=["A[] not deadlock"]))

    def test_templates_present(self, xml_root):
        names = [t.findtext("name") for t in xml_root.findall("template")]
        assert "Train_0_" in names and "Gate" in names

    def test_channels_declared(self, xml_root):
        decl = xml_root.findtext("declaration")
        assert "chan appr_0;" in decl
        assert "int len = 0;" in decl
        assert "int list[3]" in decl

    def test_clock_declaration(self, xml_root):
        template = xml_root.find("template")
        assert "clock x;" in template.findtext("declaration")

    def test_locations_and_invariants(self, xml_root):
        template = xml_root.find("template")
        invariants = [label.text
                      for label in template.iter("label")
                      if label.get("kind") == "invariant"]
        assert "x <= 20" in invariants

    def test_synchronisation_labels(self, xml_root):
        syncs = [label.text for label in xml_root.iter("label")
                 if label.get("kind") == "synchronisation"]
        assert "appr_0!" in syncs and "appr_0?" in syncs

    def test_init_refs_resolve(self, xml_root):
        for template in xml_root.findall("template"):
            ids = {loc.get("id")
                   for loc in template.findall("location")}
            assert template.find("init").get("ref") in ids

    def test_system_block(self, xml_root):
        system = xml_root.findtext("system")
        assert "system" in system

    def test_queries_embedded(self, xml_root):
        formulas = [q.findtext("formula")
                    for q in xml_root.find("queries").findall("query")]
        assert formulas == ["A[] not deadlock"]

    def test_python_guards_marked(self):
        network = make_traingate(2)
        text = export_network(network)
        assert "not exportable" in text
