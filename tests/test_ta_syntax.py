"""Unit tests for timed-automata syntax and network construction."""

import pytest

from repro.core import ModelError
from repro.ta import Automaton, ClockAtom, Network, clk
from repro.dbm import le, lt


class TestClockAtom:
    def test_bad_operator(self):
        with pytest.raises(ModelError):
            ClockAtom("x", "<>", 3)

    def test_encoded_upper(self):
        atom = clk("x", "<=", 7)
        [(i, j, b)] = list(atom.encoded_constraints({"x": 1}.__getitem__))
        assert (i, j, b) == (1, 0, le(7))

    def test_encoded_strict_upper(self):
        atom = clk("x", "<", 7)
        [(i, j, b)] = list(atom.encoded_constraints({"x": 1}.__getitem__))
        assert b == lt(7)

    def test_encoded_lower(self):
        atom = clk("x", ">=", 3)
        [(i, j, b)] = list(atom.encoded_constraints({"x": 2}.__getitem__))
        assert (i, j, b) == (0, 2, le(-3))

    def test_encoded_equality_gives_two(self):
        atom = clk("x", "==", 4)
        got = list(atom.encoded_constraints({"x": 1}.__getitem__))
        assert len(got) == 2

    def test_encoded_diagonal(self):
        atom = clk("x", "<=", 2, other="y")
        index = {"x": 1, "y": 2}.__getitem__
        [(i, j, b)] = list(atom.encoded_constraints(index))
        assert (i, j, b) == (1, 2, le(2))

    def test_holds_concrete(self):
        assert clk("x", "<=", 5).holds(5)
        assert not clk("x", "<", 5).holds(5)
        assert clk("x", ">=", 5).holds(5)
        assert clk("x", ">", 5).holds(6)
        assert clk("x", "==", 5).holds(5)

    def test_is_upper_bound(self):
        assert clk("x", "<=", 5).is_upper_bound()
        assert clk("x", "==", 5).is_upper_bound()
        assert not clk("x", ">=", 5).is_upper_bound()


class TestAutomaton:
    def test_duplicate_location(self):
        a = Automaton("A")
        a.add_location("s")
        with pytest.raises(ModelError):
            a.add_location("s")

    def test_edge_unknown_location(self):
        a = Automaton("A")
        a.add_location("s")
        with pytest.raises(ModelError):
            a.add_edge("s", "nowhere")

    def test_edge_unknown_clock_reset(self):
        a = Automaton("A", clocks=["x"])
        a.add_location("s")
        with pytest.raises(ModelError):
            a.add_edge("s", "s", resets=[("y", 0)])

    def test_validate_unknown_clock_in_guard(self):
        a = Automaton("A", clocks=["x"])
        a.add_location("s")
        a.add_edge("s", "s", guard=[clk("z", "<=", 1)])
        with pytest.raises(ModelError):
            a.validate()

    def test_committed_and_urgent_conflict(self):
        a = Automaton("A")
        with pytest.raises(ModelError):
            a.add_location("s", committed=True, urgent=True)

    def test_first_location_is_initial(self):
        a = Automaton("A")
        a.add_location("first")
        a.add_location("second")
        assert a.initial_location == "first"

    def test_bad_sync_direction(self):
        a = Automaton("A")
        a.add_location("s")
        with pytest.raises(ModelError):
            a.add_edge("s", "s", sync=("c", "x"))


class TestNetwork:
    def _simple(self):
        a = Automaton("A", clocks=["x"])
        a.add_location("s0", invariant=[clk("x", "<=", 5)])
        a.add_location("s1")
        a.add_edge("s0", "s1", guard=[clk("x", ">=", 2)], resets=[("x", 0)])
        return a

    def test_clock_renaming(self):
        net = Network()
        net.add_process("P", self._simple())
        net.add_process("Q", self._simple())
        assert net.clock_names == ("P.x", "Q.x")
        assert net.dbm_size == 3
        assert net.process_by_name("P").resolve_clock("x") == 1
        assert net.process_by_name("Q").resolve_clock("x") == 2

    def test_duplicate_process(self):
        net = Network()
        net.add_process("P", self._simple())
        with pytest.raises(ModelError):
            net.add_process("P", self._simple())

    def test_unknown_channel_detected_on_freeze(self):
        a = Automaton("A")
        a.add_location("s")
        a.add_edge("s", "s", sync=("ghost", "!"))
        net = Network()
        net.add_process("P", a)
        with pytest.raises(ModelError):
            net.freeze()

    def test_duplicate_channel(self):
        net = Network()
        net.add_channel("c")
        with pytest.raises(ModelError):
            net.add_channel("c")

    def test_frozen_rejects_additions(self):
        net = Network()
        net.add_process("P", self._simple())
        net.freeze()
        with pytest.raises(ModelError):
            net.add_channel("c")
        with pytest.raises(ModelError):
            net.add_process("Q", self._simple())

    def test_max_constants(self):
        net = Network()
        net.add_process("P", self._simple())
        assert net.max_constants() == [0, 5]
        assert net.max_constants({1: 100}) == [0, 100]

    def test_unknown_process(self):
        net = Network()
        with pytest.raises(ModelError):
            net.process_by_name("nope")

    def test_location_vector_names(self):
        net = Network()
        net.add_process("P", self._simple())
        assert net.location_vector_names((1,)) == ("s1",)
