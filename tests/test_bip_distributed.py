"""Tests for the distributed BIP engine: conflict-freedom, soundness
w.r.t. the centralized semantics, and realized parallelism."""

import pytest

from repro.bip import (
    AtomicComponent,
    BIPSystem,
    Connector,
    DistributedEngine,
    explore_statespace,
)
from repro.models.dala import make_dala, safety_invariant


def independent_workers(n):
    """n components that each toggle independently: fully parallel."""
    system = BIPSystem("workers")
    for k in range(n):
        worker = AtomicComponent(f"W{k}", ports=["work"])
        worker.add_place("idle")
        worker.add_place("busy")
        worker.add_transition("work", "idle", "busy")
        worker.add_transition("work", "busy", "idle")
        system.add_component(worker)
        system.add_connector(Connector(f"c{k}", [(f"W{k}", "work")]))
    return system


class TestDistributedEngine:
    def test_batches_are_conflict_free(self):
        system = independent_workers(4)
        engine = DistributedEngine(system, rng=1)
        for _ in range(20):
            batch = engine.step()
            components = [c for i in batch for c in i.components()]
            assert len(components) == len(set(components))

    def test_full_parallelism_on_independent_components(self):
        system = independent_workers(6)
        engine = DistributedEngine(system, rng=2)
        engine.run(max_rounds=50)
        assert engine.parallelism == pytest.approx(6.0)

    def test_reaches_only_centralized_states(self):
        system = make_dala(with_controller=True, counter_bound=4)
        states, _deadlocks = explore_statespace(system, max_states=500000)
        reachable = {s.key() for s in states}
        engine = DistributedEngine(system, rng=3)
        seen = []
        engine.run(max_rounds=200, observer=lambda s: seen.append(s))
        for state in seen:
            assert state.key() in reachable

    def test_invariant_checked(self):
        from repro.core import AnalysisError

        system = independent_workers(2)
        engine = DistributedEngine(system, rng=4)
        with pytest.raises(AnalysisError):
            engine.run(max_rounds=10,
                       invariant=lambda s: s.places[0] == "idle")

    def test_dala_runs_safely_distributed(self):
        system = make_dala(with_controller=True, counter_bound=4)
        engine = DistributedEngine(system, rng=5)
        trace = engine.run(max_rounds=300, invariant=safety_invariant)
        assert len(trace.steps) >= 300  # at least one firing per round
        assert engine.parallelism >= 1.0

    def test_deadlock_reported(self):
        component = AtomicComponent("C", ports=["p"])
        component.add_place("s")
        component.add_place("end")
        component.add_transition("p", "s", "end")
        system = BIPSystem()
        system.add_component(component)
        system.add_connector(Connector("c", [("C", "p")]))
        engine = DistributedEngine(system, rng=6)
        trace = engine.run(max_rounds=10)
        assert trace.deadlocked
        assert len(trace.steps) == 1

    def test_reset(self):
        system = independent_workers(2)
        engine = DistributedEngine(system, rng=7)
        engine.run(max_rounds=5)
        engine.reset()
        assert engine.rounds == 0
        assert engine.state.places == ("idle", "idle")
