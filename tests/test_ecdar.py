"""Tests for ECDAR-style refinement, consistency and composition."""

import pytest

from repro.core import ModelError
from repro.ecdar import check_consistency, check_refinement, compose
from repro.ta import Automaton, clk


def coffee_spec(lo=2, hi=4):
    """After coin, coffee within [lo, hi]."""
    spec = Automaton(f"spec_{lo}_{hi}", clocks=["x"])
    spec.add_location("idle")
    spec.add_location("brew", invariant=[clk("x", "<=", hi)])
    spec.add_edge("idle", "brew", label="coin", resets=[("x", 0)])
    spec.add_edge("brew", "idle", guard=[clk("x", ">=", lo)],
                  label="coffee")
    return spec


IO = (["coin"], ["coffee"])


class TestRefinement:
    def test_reflexive(self):
        assert check_refinement(coffee_spec(), coffee_spec(), *IO)

    def test_tighter_timing_refines(self):
        """Serving within [3, 3] refines serving within [2, 4]."""
        assert check_refinement(coffee_spec(3, 3), coffee_spec(2, 4), *IO)

    def test_looser_timing_does_not_refine(self):
        result = check_refinement(coffee_spec(1, 5), coffee_spec(2, 4),
                                  *IO)
        assert not result
        assert result.counterexample is not None

    def test_early_output_rejected(self):
        result = check_refinement(coffee_spec(0, 1), coffee_spec(2, 4),
                                  *IO)
        assert not result

    def test_refused_input_rejected(self):
        """An implementation without the coin edge refuses a demanded
        input."""
        impl = Automaton("no_coin", clocks=["x"])
        impl.add_location("idle")
        result = check_refinement(impl, coffee_spec(), *IO)
        assert not result
        assert "refuses" in result.counterexample[2]

    def test_extra_output_rejected(self):
        impl = coffee_spec()
        impl.add_edge("idle", "idle", label="coffee")  # unpaid coffee!
        result = check_refinement(impl, coffee_spec(), *IO)
        assert not result
        assert "no specification match" in result.counterexample[2]

    def test_fewer_outputs_refine(self):
        """A spec offering coffee or tea is refined by coffee-only."""
        spec = Automaton("either", clocks=[])
        spec.add_location("idle")
        spec.add_location("paid")
        spec.add_edge("idle", "paid", label="coin")
        spec.add_edge("paid", "idle", label="coffee")
        spec.add_edge("paid", "idle", label="tea")
        impl = Automaton("coffee_only", clocks=[])
        impl.add_location("idle")
        impl.add_location("paid")
        impl.add_edge("idle", "paid", label="coin")
        impl.add_edge("paid", "idle", label="coffee")
        assert check_refinement(impl, spec, ["coin"], ["coffee", "tea"])

    def test_io_partition_enforced(self):
        with pytest.raises(ModelError):
            check_refinement(coffee_spec(), coffee_spec(),
                             ["coin"], ["coin"])


class TestConsistency:
    def test_consistent_spec(self):
        assert check_consistency(coffee_spec(), *IO)

    def test_timelocked_spec_inconsistent(self):
        spec = Automaton("stuck", clocks=["x"])
        spec.add_location("s", invariant=[clk("x", "<=", 1)])
        # Nothing to do when x reaches 1: immediate inconsistency.
        assert not check_consistency(spec, *IO)

    def test_input_cannot_rescue(self):
        spec = Automaton("needy", clocks=["x"])
        spec.add_location("s", invariant=[clk("x", "<=", 1)])
        spec.add_location("t")
        spec.add_edge("s", "t", label="coin")  # input: may never arrive
        assert not check_consistency(spec, *IO)

    def test_output_rescues(self):
        spec = Automaton("ok", clocks=["x"])
        spec.add_location("s", invariant=[clk("x", "<=", 1)])
        spec.add_location("t")
        spec.add_edge("s", "t", label="coffee")
        assert check_consistency(spec, *IO)


class TestComposition:
    def test_matched_labels_become_channels(self):
        user = Automaton("User", clocks=[])
        user.add_location("u0")
        user.add_location("u1")
        user.add_edge("u0", "u1", label="coin")
        user.add_edge("u1", "u0", label="coffee")
        network, inputs, outputs = compose(
            user, (["coffee"], ["coin"]),
            coffee_spec(), (["coin"], ["coffee"]))
        assert set(network.channels) == {"coin", "coffee"}
        assert inputs == []
        assert set(outputs) == {"coin", "coffee"}

    def test_output_clash_rejected(self):
        with pytest.raises(ModelError):
            compose(coffee_spec(), ([], ["coffee"]),
                    coffee_spec(), ([], ["coffee"]))

    def test_composition_runs(self):
        """The composed system reaches the brewing state."""
        from repro.mc import EF, LocationIs, Verifier

        user = Automaton("User", clocks=["y"])
        user.add_location("u0", invariant=[clk("y", "<=", 1)])
        user.add_location("u1")
        user.add_edge("u0", "u1", label="coin")
        network, _inputs, _outputs = compose(
            user, ([], ["coin"]), coffee_spec(), (["coin"], ["coffee"]))
        verifier = Verifier(network)
        name = coffee_spec().name
        assert verifier.check(EF(LocationIs(name, "brew"))).holds
