"""Tests for the flight recorder (:mod:`repro.obs.flight`) and the
session dashboard (:mod:`repro.obs.dashboard`).

Covers the ring-buffer event log (tail retention, level filtering,
span correlation), the bounded time series, the crash-dump JSONL hooks,
the stall watchdog, worker-snapshot merging — and the determinism
acceptance criterion: serial, parallel, and fault-recovered campaigns
produce identical merged *logical* event sequences and time-series
sample counts (physical ``obs.*`` / ``runtime.*`` data excluded).
"""

import json

import pytest

from repro.mc import explore
from repro.mdp import MDP, reachability_probability
from repro.models.traingate import cross_predicate, make_traingate
from repro.obs import Collector, Tracer, collecting, span, tracing
from repro.obs.dashboard import render
from repro.obs.flight import (
    FlightRecorder,
    active_recorder,
    live_stacks,
    logical_events,
    logical_series,
    recording,
    validate_flight,
)
from repro.obs.profiler import Profiler, profile_record, profiling
from repro.obs.report import Report
from repro.runtime import (
    FaultInjector,
    FaultPolicy,
    ParallelExecutor,
    SerialExecutor,
    Spec,
)
from repro.smc import probability_at_least, probability_estimate
from repro.ta import ZoneGraph

TRAINGATE = Spec(make_traingate, 3)
CROSS0 = Spec(cross_predicate, 0)


@pytest.fixture(scope="module")
def pool2():
    with ParallelExecutor(workers=2) as executor:
        yield executor


class TestFlightRecorder:
    def test_ring_keeps_tail_and_counts_dropped(self):
        rec = FlightRecorder(capacity=4, rss_interval=None)
        for i in range(10):
            rec.log("tick", i=i)
        data = rec.to_dict()
        assert rec.events_logged == 10 and rec.dropped == 6
        assert data["dropped"] == 6
        assert [e["fields"]["i"] for e in data["events"]] == [6, 7, 8, 9]
        # sequence numbers are global, not per-retained-slot
        assert [e["seq"] for e in data["events"]] == [6, 7, 8, 9]

    def test_level_filtering_drops_below_threshold(self):
        rec = FlightRecorder(level="warning", rss_interval=None)
        assert rec.log("fine", level="debug") is None
        assert rec.log("ok", level="info") is None
        assert rec.log("bad", level="warning") is not None
        assert rec.log("worse", level="error") is not None
        names = [e["name"] for e in rec.to_dict()["events"]]
        assert names == ["bad", "worse"]

    def test_events_correlate_with_active_span(self):
        tracer = Tracer()
        with tracing(tracer), recording(FlightRecorder(rss_interval=None)) \
                as rec:
            rec.log("outside")
            with span("smc.estimate"):
                rec.log("inside")
        events = rec.to_dict()["events"]
        assert events[0]["span"] is None
        assert events[1]["span"] == "smc.estimate"

    def test_series_bounded_but_count_totals_everything(self):
        rec = FlightRecorder(series_capacity=8, rss_interval=None)
        for i in range(20):
            rec.sample("mc.explore", waiting=i)
        body = rec.to_dict()["series"]["mc.explore.waiting"]
        assert body["count"] == 20
        assert len(body["points"]) == 8
        assert [point[1] for point in body["points"]] == list(range(12, 20))

    def test_to_dict_validates_and_is_json_ready(self):
        rec = FlightRecorder(run_id="t", rss_interval=None)
        rec.log("e", level="info", x=1)
        rec.sample("s", v=2.5)
        data = validate_flight(rec.to_dict())
        assert data["run_id"] == "t"
        json.dumps(data)  # must not raise

    def test_validate_flight_rejects_malformed(self):
        with pytest.raises(ValueError, match="not a flight recording"):
            validate_flight([])
        with pytest.raises(ValueError, match="unsupported flight schema"):
            validate_flight({"schema": "repro.flight/999"})
        good = FlightRecorder(rss_interval=None).to_dict()
        good["events"] = [{"no_name": True}]
        with pytest.raises(ValueError, match="malformed flight event"):
            validate_flight(good)

    def test_jsonl_round_trip(self):
        rec = FlightRecorder(run_id="jl", rss_interval=None)
        rec.log("a", n=1)
        rec.sample("s", v=3)
        lines = rec.to_jsonl().strip().split("\n")
        header = json.loads(lines[0])
        assert header["schema"] == "repro.flight/1"
        assert header["run_id"] == "jl"
        assert json.loads(lines[1])["name"] == "a"
        assert json.loads(lines[2])["series"] == "s.v"

    def test_merge_tags_workers_and_resequences(self):
        worker = FlightRecorder(rss_interval=None)
        worker.log("smc.batch", runs=8)
        worker.sample("smc.estimate", mean=0.5)
        coord = FlightRecorder(rss_interval=None)
        coord.log("start")
        coord.merge(worker.to_dict(), worker=3)
        events = coord.to_dict()["events"]
        assert [e["seq"] for e in events] == [0, 1]
        assert events[1]["worker"] == 3
        assert coord.events_logged == 2
        assert coord.to_dict()["series"]["smc.estimate.mean"]["count"] == 1

    def test_logical_views_exclude_physical_names(self):
        events = [{"name": "smc.batch", "level": "info", "fields": {}},
                  {"name": "obs.stall", "level": "warning", "fields": {}},
                  {"name": "runtime.retry", "level": "info", "fields": {}}]
        assert logical_events(events) == [("smc.batch", "info", {})]
        series = {"smc.sprt.llr": {"count": 4, "points": []},
                  "obs.rss_kb": {"count": 9, "points": []}}
        assert logical_series(series) == {"smc.sprt.llr": 4}


class TestRecordingScope:
    def test_ambient_install_and_module_helpers(self):
        from repro.obs import flight

        assert active_recorder() is None
        flight.log("ignored")          # off: must be a no-op
        flight.sample("ignored", v=1)
        with recording(run_id="scope") as rec:
            assert active_recorder() is rec
            assert rec.run_id == "scope"
            flight.log("seen", n=2)
            flight.sample("s", v=1)
        assert active_recorder() is None
        data = rec.to_dict()
        assert [e["name"] for e in data["events"]] == ["seen"]
        assert "s.v" in data["series"]

    def test_crash_dump_written_on_exception(self, tmp_path):
        path = tmp_path / "flight.jsonl"
        with pytest.raises(RuntimeError):
            with recording(crash_dump=str(path), run_id="boom") as rec:
                rec.log("last_words", why="test")
                raise RuntimeError("down we go")
        lines = path.read_text().strip().split("\n")
        header = json.loads(lines[0])
        assert header["reason"] == "exception"
        assert header["run_id"] == "boom"
        assert json.loads(lines[1])["name"] == "last_words"

    def test_clean_exit_leaves_no_dump(self, tmp_path):
        path = tmp_path / "flight.jsonl"
        with recording(crash_dump=str(path)) as rec:
            rec.log("fine")
        assert not path.exists()


class TestStallWatchdog:
    def test_stall_flagged_once_per_episode_with_stacks(self):
        import time

        collector = Collector("t")
        with collecting(collector), \
                recording(FlightRecorder(rss_interval=None),
                          stall_after=0.05) as rec:
            rec.log("busy")
            deadline = time.perf_counter() + 2.0
            while rec.stalls == 0 and time.perf_counter() < deadline:
                time.sleep(0.02)  # silent: no beat on the recorder
            time.sleep(0.15)      # stay silent: still ONE episode
        assert rec.stalls == 1
        stall = [e for e in rec.to_dict()["events"]
                 if e["name"] == "obs.stall"]
        assert len(stall) == 1
        fields = stall[0]["fields"]
        assert fields["silent_seconds"] >= 0.05
        assert fields["window"] == 0.05
        assert isinstance(fields["stacks"], list)
        assert collector.value("obs.stalls") == 1

    def test_beat_resets_the_episode(self):
        rec = FlightRecorder(rss_interval=None)
        rec.check_stall(window=0.0)
        assert rec.stalls == 1
        assert rec.check_stall(window=0.0) is None  # same episode
        rec.touch()                                 # new activity
        assert rec.check_stall(window=0.0) is not None
        assert rec.stalls == 2

    def test_live_stacks_excludes_caller(self):
        stacks = live_stacks()
        assert all("live_stacks" not in stack for stack in stacks)


class TestEngineTelemetry:
    def test_explore_samples_zone_telemetry_and_logs_done(self):
        # 5 trains explore >2000 states, so the every-1024-states
        # checkpoint fires at least twice.
        network = make_traingate(5)
        with tracing(), recording(FlightRecorder(rss_interval=None)) as rec:
            graph = ZoneGraph(network)
            result = explore(graph)
        data = rec.to_dict()
        names = [e["name"] for e in data["events"]]
        assert "mc.explore.done" in names
        done = next(e for e in data["events"]
                    if e["name"] == "mc.explore.done")
        assert done["fields"]["explored"] == result.states_explored
        assert done["span"] == "mc.explore"  # correlated with the span
        assert data["series"]["mc.explore.waiting"]["count"] >= 2
        assert data["series"]["mc.explore.zones_interned"]["count"] >= 2

    def test_mdp_vi_residual_series_and_done_event(self):
        # Self-loop with escape: v = 0.4 + 0.4 v converges geometrically,
        # so value iteration genuinely iterates (nothing is frozen by the
        # prob0/prob1 precomputation) and samples the residual trajectory.
        mdp = MDP()
        s0, goal, fail = (mdp.add_state() for _ in range(3))
        mdp.add_action(s0, [(0.4, goal), (0.4, s0), (0.2, fail)])
        with recording(FlightRecorder(rss_interval=None)) as rec:
            values = reachability_probability(mdp, {goal})
        assert values[s0] == pytest.approx(2.0 / 3.0)
        data = rec.to_dict()
        assert data["series"]["mdp.vi.residual"]["count"] >= 2
        assert data["series"]["mdp.vi.iteration"]["count"] >= 2
        residuals = [p[1] for p in
                     data["series"]["mdp.vi.residual"]["points"]]
        assert residuals[-1] <= residuals[0]  # converging trajectory
        done = [e for e in data["events"] if e["name"] == "mdp.vi.done"]
        assert len(done) == 1 and done[0]["fields"]["states"] == 3

    def test_sprt_llr_series_and_verdict_event(self):
        with recording(FlightRecorder(rss_interval=None)) as rec:
            result = probability_at_least(TRAINGATE, CROSS0, theta=0.5,
                                          horizon=100, rng=7)
        data = rec.to_dict()
        verdicts = [e for e in data["events"]
                    if e["name"] == "smc.sprt.verdict"]
        assert len(verdicts) == 1
        fields = verdicts[0]["fields"]
        assert fields["runs"] == result.runs
        assert fields["accept"] == result.accept
        if result.runs > 64:
            assert data["series"]["smc.sprt.llr"]["count"] >= 1

    def test_estimate_ci_series_sampled_every_64_runs(self):
        with recording(FlightRecorder(rss_interval=None)) as rec:
            probability_estimate(TRAINGATE, CROSS0, horizon=100, runs=256,
                                 rng=42)
        series = logical_series(rec.to_dict()["series"])
        # checkpoints at runs 64, 128, 192, 256
        assert series["smc.estimate.mean"] == 4
        assert series["smc.estimate.low"] == 4
        assert series["smc.estimate.high"] == 4
        points = rec.to_dict()["series"]["smc.estimate.mean"]["points"]
        assert all(0.0 <= p[1] <= 1.0 for p in points)


class TestParallelFlightEquivalence:
    """The determinism contract: merged logical event sequences and
    time-series sample counts are identical across serial, parallel,
    and fault-recovered executions of the same fixed budget."""

    KWARGS = dict(horizon=100, runs=256, rng=42, batch_size=32)

    def run_once(self, executor, fault_policy=None):
        with recording(FlightRecorder(rss_interval=None)) as rec:
            estimate = probability_estimate(TRAINGATE, CROSS0,
                                            executor=executor,
                                            fault_policy=fault_policy,
                                            **self.KWARGS)
        data = rec.to_dict()
        return estimate, logical_events(data["events"]), \
            logical_series(data["series"])

    def test_serial_parallel_fault_recovered_identical(self, pool2):
        serial_est, serial_events, serial_series = \
            self.run_once(SerialExecutor())
        parallel_est, parallel_events, parallel_series = \
            self.run_once(pool2)
        policy = FaultPolicy(max_retries=2,
                             injector=FaultInjector(raises={1}))
        with ParallelExecutor(workers=2) as faulty:
            faulty_est, faulty_events, faulty_series = \
                self.run_once(faulty, fault_policy=policy)

        assert (serial_est.successes, serial_est.runs) == \
            (parallel_est.successes, parallel_est.runs) == \
            (faulty_est.successes, faulty_est.runs)
        assert serial_events == parallel_events == faulty_events
        assert serial_series == parallel_series == faulty_series
        assert len(serial_events) > 0 and len(serial_series) > 0

    def test_worker_events_carry_worker_ids(self, pool2):
        with recording(FlightRecorder(rss_interval=None)) as rec:
            probability_estimate(TRAINGATE, CROSS0, executor=pool2,
                                 **self.KWARGS)
        batches = [e for e in rec.to_dict()["events"]
                   if e["name"] == "smc.batch"]
        assert batches and all(e["worker"] is not None for e in batches)


class TestDashboard:
    @pytest.fixture()
    def report(self):
        collector = Collector("dash")
        collector.incr("mc.states_explored", 123)
        collector.observe("smc.run_seconds", 0.25)
        tracer = Tracer()
        profiler = Profiler(hz=1)
        with tracing(tracer), profiling(profiler=profiler), \
                recording(FlightRecorder(rss_interval=None)) as rec:
            with span("session"):
                with span("smc.estimate"):
                    rec.log("smc.batch", runs=8)
                    rec.sample("smc.estimate", mean=0.5, low=0.4, high=0.6)
                    rec.sample("smc.estimate", mean=0.6, low=0.5, high=0.7)
            profile_record(("main", "estimate", "simulate"), 10)
            profile_record(("main", "estimate", "check"), 3)
        return Report(collector, tracer=tracer, profile=profiler,
                      flight=rec, meta={"benchmark": "dash-test"},
                      sample_resources=False)

    def test_render_is_self_contained(self, report):
        html = render([("test.json", report.to_dict())])
        assert html.startswith("<!DOCTYPE html>")
        assert "<svg" in html
        assert "<script src" not in html
        assert "<link" not in html
        assert "url(" not in html
        assert "http" not in html  # no network fetches of any kind

    def test_render_shows_all_sections(self, report):
        html = render([("test.json", report.to_dict())])
        assert "mc.states_explored" in html
        assert "smc.estimate" in html          # time-series chart title
        assert "smc.batch" in html             # event tail
        assert "span timeline" in html
        assert "flamegraph" in html
        assert "simulate" in html              # flamegraph frame label
        assert "in-flight telemetry" in html

    def test_render_escapes_hostile_strings(self):
        collector = Collector()
        report = Report(collector, meta={"evil": "<script>alert(1)"},
                        sample_resources=False)
        html = render([("<x>.json", report.to_dict())])
        assert "<script>alert" not in html
        assert "&lt;script&gt;alert" in html

    def test_main_writes_artifact(self, tmp_path, report):
        from repro.obs.dashboard import main

        report_path = tmp_path / "r.json"
        report.write(str(report_path))
        out = tmp_path / "dash.html"
        assert main([str(report_path), "-o", str(out)]) == 0
        text = out.read_text()
        assert text.startswith("<!DOCTYPE html>")
        assert "smc.batch" in text

    def test_main_rejects_invalid_report(self, tmp_path):
        from repro.obs.dashboard import main

        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "nope"}')
        assert main([str(bad), "-o", str(tmp_path / "x.html")]) == 2


class TestReportFlightSection:
    def test_report_embeds_and_validates_flight(self):
        rec = FlightRecorder(run_id="rep", rss_interval=None)
        rec.log("e")
        report = Report(Collector(), flight=rec, sample_resources=False)
        data = report.to_dict()
        assert data["flight"]["run_id"] == "rep"
        from repro.obs.report import validate

        validate(data)  # embedded flight section passes the gate

    def test_validate_rejects_bad_embedded_flight(self):
        report = Report(Collector(), sample_resources=False).to_dict()
        report["flight"] = {"schema": "repro.flight/999"}
        from repro.obs.report import validate

        with pytest.raises(ValueError, match="embedded flight section"):
            validate(report)
