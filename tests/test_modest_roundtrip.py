"""Property-based tests of the MODEST front-end: randomly generated
programs must parse deterministically and flatten into well-formed
networks that all backends can at least load."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.modest import flatten_model, parse_modest
from repro.pta import build_digital_mdp


ACTIONS = ["a", "b", "c"]


@st.composite
def statements(draw, depth=0):
    """A random statement in the MODEST subset's concrete syntax."""
    choices = ["act", "act_assign", "guarded", "deadline"]
    if depth < 2:
        choices += ["seq", "alt", "palt"]
    kind = draw(st.sampled_from(choices))
    if kind == "act":
        return draw(st.sampled_from(ACTIONS))
    if kind == "act_assign":
        action = draw(st.sampled_from(ACTIONS))
        value = draw(st.integers(0, 5))
        return f"{action} {{= n = {value} =}}"
    if kind == "guarded":
        bound = draw(st.integers(0, 4))
        inner = draw(statements(depth + 1))
        return f"when(x >= {bound}) {inner}"
    if kind == "deadline":
        bound = draw(st.integers(1, 5))
        inner = draw(statements(depth + 1))
        return f"invariant(x <= {bound}) {inner}"
    if kind == "seq":
        left = draw(statements(depth + 1))
        right = draw(statements(depth + 1))
        return f"{left}; {right}"
    if kind == "alt":
        n = draw(st.integers(2, 3))
        alts = "\n".join(
            f":: {draw(statements(depth + 1))}" for _ in range(n))
        return f"alt {{ {alts} }}"
    # palt
    w1 = draw(st.integers(1, 9))
    w2 = draw(st.integers(1, 9))
    action = draw(st.sampled_from(ACTIONS))
    inner = draw(statements(depth + 1))
    return (f"{action} palt {{ :{w1}: {{= n = 1 =}} "
            f": {w2}: {inner} }}")


@st.composite
def programs(draw):
    body = draw(statements())
    return (f"int n = 0;\n"
            f"process P() {{ clock x; {body} }}\n"
            f"P()")


@settings(max_examples=60, deadline=None)
@given(programs())
def test_random_programs_flatten(source):
    model = parse_modest(source)
    network = flatten_model(model)
    assert len(network.processes) == 1
    automaton = network.processes[0].automaton
    assert automaton.initial_location in automaton.locations
    # Every edge endpoint exists.
    for edge in automaton.edges:
        assert edge.source in automaton.locations
        assert edge.target in automaton.locations


@settings(max_examples=60, deadline=None)
@given(programs())
def test_parse_is_deterministic(source):
    first = flatten_model(parse_modest(source))
    second = flatten_model(parse_modest(source))
    a1 = first.processes[0].automaton
    a2 = second.processes[0].automaton
    assert list(a1.locations) == list(a2.locations)
    assert len(a1.edges) == len(a2.edges)


@settings(max_examples=25, deadline=None)
@given(programs())
def test_digital_mdp_buildable(source):
    """Whatever the subset generates, the digital translation either
    produces a finite MDP or cleanly reports an ill-formed model (a
    probabilistic branch entering an invariant-violating state — the
    generator can produce deadlines that some palt branch misses)."""
    from repro.core import ModelError

    network = flatten_model(parse_modest(source))
    try:
        digital = build_digital_mdp(network, max_states=20000)
    except ModelError as error:
        assert "invariant" in str(error)
        return
    assert digital.mdp.num_states >= 1
