"""Tests for the MODEST subset: lexer, parser, flattening, and the
three toolset backends on small models (including the paper's Fig. 5)."""

import pytest

from repro.core import ModelError, ParseError
from repro.modest import (
    ActionPrefix,
    Alt,
    Emax,
    Interval,
    Invariant,
    Loop,
    Pmax,
    Reach,
    Sequence,
    When,
    flatten_model,
    mcpta,
    mctau,
    modes,
    parse_modest,
    tokenize,
)

#: The communication channel of the paper's Fig. 5, verbatim (plus the
#: constant TD it references).
FIG5 = """
const int TD = 1;

process Channel() {
  clock c;
  put palt {
  :98: {= c = 0 =};
     // transmission delay of
     // up to TD time units
     invariant(c <= TD) get
  : 2: {==} // message lost
  }; Channel()
}
"""


class TestLexer:
    def test_symbols(self):
        kinds = [t.kind for t in tokenize("{= =} :: && <= == !=")]
        assert kinds == ["{=", "=}", "::", "&&", "<=", "==", "!=", "eof"]

    def test_keywords_vs_idents(self):
        tokens = tokenize("process put palt when")
        assert [t.kind for t in tokens[:-1]] == [
            "keyword", "ident", "keyword", "keyword"]

    def test_comments_skipped(self):
        tokens = tokenize("a // comment\n b")
        assert [t.value for t in tokens[:-1]] == ["a", "b"]

    def test_numbers(self):
        [tok, _eof] = tokenize("98")
        assert tok.kind == "number" and tok.value == 98

    def test_line_tracking(self):
        tokens = tokenize("a\nb\n  c")
        assert [t.line for t in tokens[:-1]] == [1, 2, 3]

    def test_bad_character(self):
        with pytest.raises(ParseError):
            tokenize("a @ b")


class TestParser:
    def test_fig5_parses(self):
        model = parse_modest(FIG5)
        assert "Channel" in model.processes
        body = model.processes["Channel"].body
        assert isinstance(body, Sequence)
        act = body.statements[0]
        assert isinstance(act, ActionPrefix)
        assert act.action == "put"
        assert len(act.branches) == 2
        assert act.branches[0].weight == 98
        assert act.branches[1].weight == 2

    def test_fig5_branch_structure(self):
        model = parse_modest(FIG5)
        branches = model.processes["Channel"].body.statements[0].branches
        # Delivery branch: reset assignment + invariant-get continuation.
        assert len(branches[0].assignments) == 1
        assert isinstance(branches[0].continuation, Invariant)
        # Loss branch: empty assignment block, no continuation.
        assert branches[1].assignments == ()
        assert branches[1].continuation is None

    def test_declarations(self):
        model = parse_modest(
            "int x = 3; bool b; const int N = 5; clock c;\n"
            "process P() { tau }")
        kinds = {d.name: d.kind for d in model.declarations}
        assert kinds == {"x": "int", "b": "bool", "N": "int", "c": "clock"}

    def test_when_and_alt(self):
        model = parse_modest("""
            process P() {
              alt {
                :: when(x > 1) a
                :: b
              }
            }""")
        body = model.processes["P"].body
        assert isinstance(body, Alt)
        assert isinstance(body.alternatives[0], When)

    def test_do_loop(self):
        model = parse_modest("process P() { do { :: a; b } }")
        assert isinstance(model.processes["P"].body, Loop)

    def test_par_composition(self):
        model = parse_modest(
            "process P() { a } process Q() { a } par { :: P() :: Q() }")
        assert [c.name for c in model.composition] == ["P", "Q"]

    def test_expression_precedence(self):
        model = parse_modest("process P() { when(1 + 2 * 3 == 7) a }")
        guard = model.processes["P"].body.guard
        assert guard.eval({}) is True

    def test_parse_errors(self):
        with pytest.raises(ParseError):
            parse_modest("process P( { a }")
        with pytest.raises(ParseError):
            parse_modest("process P() { palt }")
        with pytest.raises(ParseError):
            parse_modest("process P() { alt { } }")
        with pytest.raises(ParseError):
            parse_modest("wibble")


class TestFlattening:
    def test_fig5_channel_automaton(self):
        net = flatten_model(parse_modest(FIG5))
        process = net.processes[0]
        automaton = process.automaton
        # One probabilistic edge (put), one get edge, one recursion edge.
        prob_edges = [e for e in automaton.edges
                      if hasattr(e, "branches")]
        assert len(prob_edges) == 1
        [put] = prob_edges
        assert put.branches[0].probability == pytest.approx(0.98)
        assert put.branches[1].probability == pytest.approx(0.02)
        # Delivery branch resets the clock.
        assert put.branches[0].resets == (("c", 0),)

    def test_fig5_invariant_on_transit_location(self):
        net = flatten_model(parse_modest(FIG5))
        automaton = net.processes[0].automaton
        transit = [loc for loc in automaton.locations.values()
                   if loc.invariant]
        assert len(transit) == 1
        [atom] = transit[0].invariant
        assert atom.clock == "c" and atom.op == "<=" and atom.bound == 1

    def test_shared_actions_become_channels(self):
        net = flatten_model(parse_modest("""
            process P() { ping; pong }
            process Q() { ping; pong }
            par { :: P() :: Q() }"""))
        assert set(net.channels) == {"ping", "pong"}

    def test_three_way_sync_rejected(self):
        with pytest.raises(ModelError):
            flatten_model(parse_modest("""
                process P() { a } process Q() { a } process R() { a }
                par { :: P() :: Q() :: R() }"""))

    def test_non_tail_call_rejected(self):
        with pytest.raises(ModelError):
            flatten_model(parse_modest(
                "process P() { a } process Q() { P() } Q()"))

    def test_clock_guard_split(self):
        net = flatten_model(parse_modest("""
            const int K = 4;
            int n = 0;
            process P() {
              clock x;
              when(x >= K && n == 0) a {= n = 1 =}
            }
            P()"""))
        automaton = net.processes[0].automaton
        [edge] = [e for e in automaton.edges if e.label == "a"]
        assert len(edge.guard) == 1
        assert edge.guard[0].bound == 4
        assert edge.data_guard is not None

    def test_nonconstant_clock_bound_rejected(self):
        with pytest.raises(ModelError):
            flatten_model(parse_modest("""
                int n = 0;
                process P() { clock x; when(x <= n) a }
                P()"""))


class TestToolset:
    """A tiny lossy handshake analysed by all three backends."""

    SRC = """
        const int TD = 1;
        bool done = false;

        process Channel() {
          clock c;
          put palt {
          :9: {= c = 0 =}; invariant(c <= TD) get
          :1: {==}
          }; Channel()
        }

        process Sender() {
          clock x;
          do {
            :: invariant(x <= 2) when(x >= 2) put {= x = 0 =}
            :: get {= done = true =}
          }
        }

        par { :: Sender() :: Channel() }
    """

    @staticmethod
    def _done(names, valuation, clocks):
        return bool(valuation["done"])

    def test_mctau(self):
        results = mctau(self.SRC, [Reach("done", self._done),
                                   Pmax("p_done", self._done),
                                   Emax("t_done", self._done)])
        assert results["done"] is True
        assert results["p_done"] == Interval(0, 1)
        assert results["t_done"] is None

    def test_mctau_unreachable_is_exact_zero(self):
        def never(names, valuation, clocks):
            return False

        results = mctau(self.SRC, [Pmax("nope", never)])
        assert results["nope"] == 0.0

    def test_mcpta(self):
        results = mcpta(self.SRC, [Pmax("p_done", self._done),
                                   Emax("t_done", self._done)])
        # Delivery succeeds eventually with probability 1.
        assert results["p_done"] == pytest.approx(1.0)
        # Each round takes 2 (sender period); delivery needs Geom(0.9)
        # rounds plus up to TD transit -- expected max time is finite
        # and at least one round.
        assert 2.0 <= results["t_done"] < 6.0

    def test_modes(self):
        results = modes(self.SRC, [Pmax("p_done", self._done),
                                   Emax("t_done", self._done)],
                        runs=200, rng=3)
        assert results["p_done"].mean == pytest.approx(1.0)
        assert 2.0 <= results["t_done"].mean < 6.0

    def test_backends_agree(self):
        """The single-formalism, multi-solution promise: the exact value
        from mcpta lies in mctau's interval and near modes' estimate."""
        exact = mcpta(self.SRC, [Pmax("p", self._done)])["p"]
        interval = mctau(self.SRC, [Pmax("p", self._done)])["p"]
        estimate = modes(self.SRC, [Pmax("p", self._done)],
                         runs=100, rng=4)["p"]
        assert interval.low <= exact <= interval.high
        assert abs(estimate.mean - exact) < 0.1
