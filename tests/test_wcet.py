"""Tests for the WCET case study (CORA application, Section II)."""

import pytest

from repro.core import AnalysisError
from repro.cora import (
    PricedTA,
    max_cost_reachability,
    min_cost_reachability,
)
from repro.models.wcet import (
    at_done,
    expected_bcet,
    expected_wcet,
    make_wcet_model,
)
from repro.ta import Automaton, Network


@pytest.mark.parametrize("iterations", [1, 2, 3])
def test_wcet_matches_closed_form(iterations):
    priced = make_wcet_model(iterations)
    result = max_cost_reachability(priced, at_done)
    assert result.cost == expected_wcet(iterations)


@pytest.mark.parametrize("iterations", [1, 2, 3])
def test_bcet_matches_closed_form(iterations):
    priced = make_wcet_model(iterations)
    result = min_cost_reachability(priced, at_done)
    assert result.cost == expected_bcet(iterations)


def test_wcet_exceeds_bcet():
    priced = make_wcet_model(3)
    wcet = max_cost_reachability(priced, at_done).cost
    bcet = min_cost_reachability(priced, at_done).cost
    assert wcet > bcet


def test_wcet_trace_is_returned():
    priced = make_wcet_model(1)
    result = max_cost_reachability(priced, at_done)
    assert result.trace is not None
    assert len(result.trace) > 0


def test_unbounded_loop_detected():
    """A zero-guard self-loop makes the maximum unbounded."""
    automaton = Automaton("A", clocks=["x"])
    automaton.add_location("spin")
    automaton.add_location("goal")
    automaton.add_edge("spin", "spin", resets=[("x", 0)])
    automaton.add_edge("spin", "goal")
    network = Network()
    network.add_process("P", automaton)
    priced = PricedTA(network)
    priced.set_rate("P", "spin", 1)
    with pytest.raises(AnalysisError):
        max_cost_reachability(
            priced, lambda names, v, c: names[0] == "goal")


def test_unreachable_goal_max():
    automaton = Automaton("A", clocks=[])
    automaton.add_location("s")
    automaton.add_location("island")
    network = Network()
    network.add_process("P", automaton)
    priced = PricedTA(network)
    result = max_cost_reachability(
        priced, lambda names, v, c: names[0] == "island")
    assert result.cost is None
