"""Tests for the BRP case study (the model behind Table I).

The full (N=16) analyses live in ``benchmarks/bench_table1_brp.py``;
here we verify the model's structure and the exact probabilities on
smaller instances where the closed form is easy to state:

    q = P(attempt fails) = 0.02 + 0.98 * 0.01 = 0.0298
    P(frame fails)       = q ** (MAX + 1)
    P1 = 1 - (1 - q**(MAX+1)) ** N
    P2 = (1 - q**(MAX+1)) ** (N-1) * q**(MAX+1)
"""

import pytest

from repro.mdp import expected_total_reward, reachability_probability
from repro.models import brp
from repro.pta import DigitalSimulator, build_digital_mdp
from repro.pta import overapproximate_network
from repro.mc import EF, DataPred, LocationIs, Verifier


Q_ATTEMPT = 0.02 + 0.98 * 0.01


def frame_fail(max_retrans):
    return Q_ATTEMPT ** (max_retrans + 1)


def p1_closed_form(n, max_retrans):
    return 1.0 - (1.0 - frame_fail(max_retrans)) ** n


def p2_closed_form(n, max_retrans):
    return (1.0 - frame_fail(max_retrans)) ** (n - 1) * \
        frame_fail(max_retrans)


@pytest.fixture(scope="module")
def small():
    """N=2, MAX=1 instance and its digital MDP."""
    network = brp.make_brp(n_frames=2, max_retrans=1, td=1)
    return network, build_digital_mdp(network)


class TestStructure:
    def test_processes(self, small):
        network, _dm = small
        names = [p.name for p in network.processes]
        assert names == ["Sender", "ChannelK", "Receiver", "ChannelL"]

    def test_deadline_clock_optional(self):
        network = brp.make_brp(2, 1, 1, with_deadline_clock=True)
        assert network.processes[-1].name == "Watch"

    def test_state_space_finite(self, small):
        _network, dm = small
        assert 0 < dm.mdp.num_states < 2000


class TestExactProbabilities:
    def test_p1(self, small):
        _network, dm = small
        v = reachability_probability(
            dm.mdp, dm.states_where(brp.not_success), maximize=True)
        assert v[0] == pytest.approx(p1_closed_form(2, 1), rel=1e-9)

    def test_p2(self, small):
        _network, dm = small
        v = reachability_probability(
            dm.mdp, dm.states_where(brp.uncertainty), maximize=True)
        assert v[0] == pytest.approx(p2_closed_form(2, 1), rel=1e-9)

    def test_pa_pb_are_zero(self, small):
        _network, dm = small
        assert not dm.states_where(brp.bogus_success(2))
        assert not dm.states_where(brp.bogus_failure(2))

    def test_no_premature_timeouts(self, small):
        _network, dm = small
        assert not dm.states_where(brp.premature_timeout)

    def test_success_probability_complements_p1(self, small):
        _network, dm = small
        ok = dm.location_states("Sender", "s_ok")
        v = reachability_probability(dm.mdp, ok, maximize=False)
        assert v[0] == pytest.approx(1.0 - p1_closed_form(2, 1), rel=1e-9)

    def test_p1_grows_with_file_length(self):
        values = []
        for n in (1, 2, 4):
            dm = build_digital_mdp(brp.make_brp(n, 1, 1))
            v = reachability_probability(
                dm.mdp, dm.states_where(brp.not_success), maximize=True)
            values.append(v[0])
        assert values[0] < values[1] < values[2]

    def test_p1_shrinks_with_more_retransmissions(self):
        values = []
        for max_retrans in (0, 1, 2):
            dm = build_digital_mdp(brp.make_brp(2, max_retrans, 1))
            v = reachability_probability(
                dm.mdp, dm.states_where(brp.not_success), maximize=True)
            values.append(v[0])
        assert values[0] > values[1] > values[2]


class TestTiming:
    def test_emax_close_to_analytic(self, small):
        """Per frame: 2 t.u. round trip plus 3 per retransmission."""
        _network, dm = small
        v = expected_total_reward(
            dm.mdp, dm.states_where(brp.reported), maximize=True)
        analytic = 2 * (2 + 3 * Q_ATTEMPT)  # coarse: one retry weighted
        assert v[0] == pytest.approx(analytic, rel=0.05)

    def test_dmax_deadline(self):
        network = brp.make_brp(2, 1, 1, with_deadline_clock=True)
        watch = network.process_by_name("Watch")
        t_index = watch.resolve_clock("t")
        dm = build_digital_mdp(network, extra_constants={t_index: 12})
        target = dm.states_where(brp.success_within(11, network))
        v = reachability_probability(dm.mdp, target, maximize=True)
        # Generous deadline: essentially the success probability.
        assert v[0] == pytest.approx(1.0 - p1_closed_form(2, 1), rel=1e-3)

    def test_tight_deadline_cuts_probability(self):
        network = brp.make_brp(2, 1, 1, with_deadline_clock=True)
        watch = network.process_by_name("Watch")
        t_index = watch.resolve_clock("t")
        dm = build_digital_mdp(network, extra_constants={t_index: 12})
        loose = reachability_probability(
            dm.mdp, dm.states_where(brp.success_within(11, network)),
            maximize=True)[0]
        tight = reachability_probability(
            dm.mdp, dm.states_where(brp.success_within(2, network)),
            maximize=True)[0]
        assert tight <= loose


class TestMctauView:
    def test_overapproximation_proves_safety(self):
        ta = overapproximate_network(brp.make_brp(2, 1, 1))
        v = Verifier(ta)
        # TA1: no premature timeout, even with losses nondeterministic.
        assert not v.check(
            EF(DataPred(lambda env: env["premature"]))).holds
        # PA as reachability: bogus success unreachable.
        from repro.mc import And
        assert not v.check(EF(And(
            LocationIs("Sender", "s_ok"),
            DataPred(lambda env: env["r_count"] < 2)))).holds

    def test_overapproximation_reaches_all_verdicts(self):
        ta = overapproximate_network(brp.make_brp(2, 1, 1))
        v = Verifier(ta)
        for report in ("s_ok", "s_nok", "s_dk"):
            assert v.check(EF(LocationIs("Sender", report))).holds, report


class TestModesView:
    def test_simulation_statistics(self):
        network = brp.make_brp(2, 1, 1)
        sim = DigitalSimulator(network, policy="max-delay", rng=21)
        times = []
        failures = 0
        for _ in range(300):
            run = sim.run(stop=brp.reported)
            names = network.location_vector_names(run.final_state.locs)
            if names[0] != "s_ok":
                failures += 1
            times.append(run.elapsed)
        mean = sum(times) / len(times)
        # Analytic max-scheduler mean ~ 2*(2 + 3*q) ~ 4.18.
        assert 3.9 < mean < 4.5
        assert failures < 10
