"""Tests for Fischer's protocol: the classic timing-dependent mutex."""

import pytest

from repro.mc import EF, LocationIs, Verifier
from repro.models.fischer import (
    make_broken_fischer,
    make_fischer,
    mutual_exclusion_query,
)


class TestCorrectProtocol:
    @pytest.fixture(scope="class")
    def verifier(self):
        return Verifier(make_fischer(3, 2))

    def test_mutual_exclusion(self, verifier):
        assert verifier.check(mutual_exclusion_query(3)).holds

    def test_critical_section_reachable(self, verifier):
        for pid in range(1, 4):
            assert verifier.check(EF(LocationIs(f"P({pid})", "cs"))).holds

    def test_deadlock_free(self, verifier):
        assert verifier.deadlock_free().holds

    def test_two_processes(self):
        verifier = Verifier(make_fischer(2, 2))
        assert verifier.check(mutual_exclusion_query(2)).holds


class TestBrokenProtocol:
    def test_mutex_violated(self):
        verifier = Verifier(make_broken_fischer(2, 2))
        result = verifier.check(mutual_exclusion_query(2))
        assert not result.holds

    def test_violation_has_witness(self):
        verifier = Verifier(make_broken_fischer(2, 2))
        result = verifier.check(
            EF(LocationIs("P(1)", "cs") & LocationIs("P(2)", "cs")))
        assert result.holds
        assert result.trace is not None
        assert len(result.trace) >= 4  # both must request, write, enter


class TestTimingSensitivity:
    @pytest.mark.parametrize("k", [1, 2, 5])
    def test_safe_for_any_k(self, k):
        """Correctness does not depend on the constant's magnitude,
        only on write-before-check ordering."""
        verifier = Verifier(make_fischer(2, k))
        assert verifier.check(mutual_exclusion_query(2)).holds
