"""The exploration-core suite: unit tests for the shared data
structures and the old-vs-new differential equivalence contract.

The contract (ISSUE: exploration rework): the production
:func:`repro.mc.explore` must agree **bit for bit** with the preserved
seed engine (:func:`repro.mc.reference.reference_explore`) — same
verdicts, witnesses, state counts and logical observability totals —
and must itself be invariant under switching the zone-interning /
successor-cache layer on or off.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ModelError, ReproError, SearchLimitError
from repro.mc import (
    Frontier,
    LRUCache,
    TraceNode,
    ZoneStore,
    build_graph,
    explore,
    materialise,
    reconstruct_trace,
)
from repro.mc.reference import reference_explore
from repro.models.brp import make_brp
from repro.models.fischer import make_fischer
from repro.models.traingate import make_traingate
from repro.obs.metrics import collecting
from repro.runtime import ParallelExecutor, SerialExecutor
from repro.dbm import DBM
from repro.ta import Automaton, Network, ZoneGraph, clk


# ---------------------------------------------------------------------------
# Unit tests for the core data structures.


class TestFrontier:
    def test_bfs_pops_oldest_first(self):
        f = Frontier("bfs")
        f.extend([1, 2, 3])
        assert [f.pop(), f.pop(), f.pop()] == [1, 2, 3]

    def test_dfs_pops_newest_first(self):
        f = Frontier("dfs")
        f.extend([1, 2, 3])
        assert [f.pop(), f.pop(), f.pop()] == [3, 2, 1]

    def test_len_and_bool(self):
        f = Frontier()
        assert not f and len(f) == 0
        f.push("a")
        assert f and len(f) == 1
        f.pop()
        assert not f

    def test_unknown_order_rejected(self):
        with pytest.raises(ModelError):
            Frontier("random")


class TestTraceNode:
    def test_reconstruct_none_is_none(self):
        assert reconstruct_trace(None) is None

    def test_root_has_no_transition(self):
        root = TraceNode("s0")
        assert reconstruct_trace(root) == [(None, "s0")]

    def test_chain_is_root_first(self):
        root = TraceNode("s0")
        a = TraceNode("s1", "t1", root)
        b = TraceNode("s2", "t2", a)
        assert reconstruct_trace(b) == [
            (None, "s0"), ("t1", "s1"), ("t2", "s2")]

    def test_prefixes_are_shared(self):
        root = TraceNode("s0")
        a = TraceNode("s1", "t1", root)
        b = TraceNode("s2", "t2", root)
        assert a.parent is b.parent is root


class TestZoneStore:
    def test_interns_equal_zones_to_one_object(self):
        store = ZoneStore()
        z1 = DBM.zero(3).up()
        z2 = DBM.zero(3).up()
        assert z1 is not z2
        first = store.intern(z1)
        second = store.intern(z2)
        assert first is z1
        assert second is z1
        assert store.hits == 1
        assert store.distinct == len(store) == 1

    def test_distinct_zones_stay_distinct(self):
        store = ZoneStore()
        z1 = DBM.zero(3)
        z2 = DBM.zero(3).up()
        assert store.intern(z1) is z1
        assert store.intern(z2) is z2
        assert store.hits == 0
        assert store.distinct == 2


class TestLRUCache:
    def test_hit_and_miss_counters(self):
        cache = LRUCache(4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert (cache.hits, cache.misses) == (1, 1)

    def test_evicts_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1   # refresh a
        cache.put("c", 3)            # evicts b
        assert "b" not in cache
        assert cache.get("a") == 1 and cache.get("c") == 3

    def test_maxsize_zero_disables_storage(self):
        cache = LRUCache(0)
        cache.put("a", 1)
        assert len(cache) == 0
        assert cache.get("a") is None

    def test_maxsize_none_is_unbounded(self):
        cache = LRUCache(None)
        for i in range(1000):
            cache.put(i, i)
        assert len(cache) == 1000

    def test_negative_size_rejected(self):
        with pytest.raises(ModelError):
            LRUCache(-1)

    def test_clear(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.clear()
        assert "a" not in cache and len(cache) == 0


# ---------------------------------------------------------------------------
# Differential equivalence: seed engine vs the exploration core.


MODELS = [
    pytest.param(lambda: make_traingate(3), id="traingate3"),
    pytest.param(lambda: make_fischer(3), id="fischer3"),
    pytest.param(lambda: make_fischer(4), id="fischer4"),
    pytest.param(lambda: make_brp(n_frames=2, max_retrans=1), id="brp"),
]

#: Physical cache diagnostics, legitimately different across engine
#: configurations; everything else under ``mc.`` must match exactly.
PHYSICAL = ("mc.zone_interned", "mc.succ_cache_hits")


def _logical_mc(snapshot):
    return {name: value for name, value in snapshot["counters"].items()
            if name.startswith("mc.") and name not in PHYSICAL}


def _run(engine, network, **kwargs):
    """One observed search; returns (result, graph stats, mc counters).

    All engines run the *compat* configuration — classic
    k-extrapolation and no waiting-list eviction — which is the
    bit-identical anchor against the seed engine.  The coarser lu+
    abstraction and bidirectional subsumption are checked separately
    (:class:`TestAbstractionEquivalence`) with set-level assertions,
    since they legitimately visit fewer states.
    """
    if engine == "reference":
        graph = ZoneGraph(network, intern_zones=False, cache_size=0,
                          abstraction="k")
        search = reference_explore
    elif engine == "uncached":
        graph = ZoneGraph(network, intern_zones=False, cache_size=0,
                          abstraction="k")
        search = explore
        kwargs = dict(kwargs, evict_waiting=False)
    else:
        graph = ZoneGraph(network, abstraction="k")
        search = explore
        kwargs = dict(kwargs, evict_waiting=False)
    with collecting() as collector:
        result = search(graph, **kwargs)
    return result, graph.stats.snapshot(), _logical_mc(collector.snapshot())


def _trace_key(trace):
    if trace is None:
        return None
    return [(transition.describe() if transition is not None else None,
             state.key())
            for transition, state in trace]


class TestEngineEquivalence:
    @pytest.mark.parametrize("make", MODELS)
    def test_full_exploration_bit_identical(self, make):
        results = {engine: _run(engine, make())
                   for engine in ("reference", "uncached", "cached")}
        ref_result, ref_stats, ref_counters = results["reference"]
        for engine in ("uncached", "cached"):
            result, stats, counters = results[engine]
            assert result.found == ref_result.found, engine
            assert result.states_explored == ref_result.states_explored
            assert result.states_stored == ref_result.states_stored
            assert stats == ref_stats, engine
            assert counters == ref_counters, engine

    @pytest.mark.parametrize("make", MODELS)
    def test_witness_traces_match(self, make):
        network = make()
        # A goal a few steps in: some process has left its initial
        # location (index 0) — reachable in every bundled model.
        def goal(state):
            return any(li != 0 for li in state.locs)

        traces = {}
        for engine in ("reference", "uncached", "cached"):
            result, _stats, _counters = _run(engine, network, goal=goal)
            assert result.found
            traces[engine] = _trace_key(result.trace)
        assert traces["uncached"] == traces["reference"]
        assert traces["cached"] == traces["reference"]

    def test_max_states_and_no_inclusion_agree(self):
        network = make_fischer(3)
        for kwargs in ({"max_states": 40}, {"use_inclusion": False}):
            ref, ref_stats, _ = _run("reference", make_fischer(3), **kwargs)
            new, new_stats, _ = _run("cached", network, **kwargs)
            assert (new.states_explored, new.states_stored) == \
                (ref.states_explored, ref.states_stored)
            assert new_stats == ref_stats

    def test_dfs_order_explores_same_states(self):
        """DFS visits a different sequence but the same reachable set."""
        dfs = explore(ZoneGraph(make_fischer(3), abstraction="k"),
                      order="dfs", evict_waiting=False)
        ref = reference_explore(
            ZoneGraph(make_fischer(3), intern_zones=False, cache_size=0,
                      abstraction="k"))
        assert dfs.states_stored == ref.states_stored


@st.composite
def random_automata(draw):
    """Small random diagonal-free timed automata (1-2 clocks)."""
    clocks = ["x", "y"][:draw(st.integers(1, 2))]
    n_locs = draw(st.integers(2, 4))
    a = Automaton("R", clocks=clocks)
    for i in range(n_locs):
        invariant = []
        if draw(st.booleans()):
            invariant = [clk(draw(st.sampled_from(clocks)), "<=",
                             draw(st.integers(1, 5)))]
        a.add_location(f"l{i}", invariant=invariant)
    for _ in range(draw(st.integers(1, 6))):
        guard = []
        if draw(st.booleans()):
            guard = [clk(draw(st.sampled_from(clocks)),
                         draw(st.sampled_from(["<=", ">=", "<", ">"])),
                         draw(st.integers(0, 5)))]
        resets = [(c, 0) for c in clocks if draw(st.booleans())]
        a.add_edge(f"l{draw(st.integers(0, n_locs - 1))}",
                   f"l{draw(st.integers(0, n_locs - 1))}",
                   guard=guard, resets=resets)
    return a


@settings(max_examples=40, deadline=None)
@given(random_automata())
def test_random_automata_bit_identical(automaton):
    """Property: on arbitrary small automata the three engine
    configurations agree on counts, stats and counter totals."""
    network = Network("rand")
    network.add_process(automaton.name, automaton)
    ref, ref_stats, ref_counters = _run("reference", network)
    for engine in ("uncached", "cached"):
        result, stats, counters = _run(engine, network)
        assert (result.found, result.states_explored,
                result.states_stored) == \
            (ref.found, ref.states_explored, ref.states_stored)
        assert stats == ref_stats
        assert counters == ref_counters


# ---------------------------------------------------------------------------
# Abstraction equivalence: lu+ / k / none agree on everything a query
# can observe, even though lu+ visits (often far) fewer states.


def _configs(graph, **kwargs):
    """(result, set of discrete configurations) of one exploration."""
    seen = set()
    result = explore(graph, on_state=lambda s: seen.add(s.discrete_key()),
                     **kwargs)
    return result, seen


def _replay_discrete(network, trace):
    """Replay a witness trace's transitions on the exact zone graph.

    Every step must name an enabled transition of the unabstracted
    graph leading to the recorded discrete successor — i.e. the trace
    is a real run of the model, not an artifact of the abstraction.
    """
    exact = ZoneGraph(network, abstraction="none")
    state = exact.initial()
    assert trace[0][0] is None
    assert trace[0][1].locs == state.locs
    for transition, recorded in trace[1:]:
        wanted = transition.describe()
        for cand, succ in exact.successors(state):
            if cand.describe() == wanted and succ.locs == recorded.locs:
                state = succ
                break
        else:
            raise AssertionError(f"trace step {wanted} not enabled")


class TestAbstractionEquivalence:
    @pytest.mark.parametrize("make", MODELS)
    def test_same_discrete_configurations(self, make):
        _, exact = _configs(ZoneGraph(make(), abstraction="k"),
                            evict_waiting=False)
        for kwargs in ({}, {"evict_waiting": False}):
            lu_result, lu = _configs(ZoneGraph(make(), abstraction="lu+"),
                                     **kwargs)
            assert lu == exact, kwargs
            _, knew = _configs(ZoneGraph(make(), abstraction="k"), **kwargs)
            assert knew == exact, kwargs

    @pytest.mark.parametrize("make", MODELS)
    def test_lu_visits_no_more_states(self, make):
        ref = reference_explore(ZoneGraph(make(), intern_zones=False,
                                          cache_size=0, abstraction="k"))
        lu, _ = _configs(ZoneGraph(make(), abstraction="lu+"))
        assert lu.states_stored <= ref.states_stored
        assert lu.states_explored <= ref.states_explored

    @pytest.mark.parametrize("make", MODELS)
    def test_witness_traces_are_real_runs(self, make):
        network = make()

        def goal(state):
            return any(li != 0 for li in state.locs)

        for abstraction in ("lu+", "k"):
            result = explore(ZoneGraph(network, abstraction=abstraction),
                             goal=goal)
            assert result.found
            assert goal(result.trace[-1][1])
            _replay_discrete(network, result.trace)

    def test_lu_counters_flow_to_observability(self):
        with collecting() as collector:
            explore(ZoneGraph(make_fischer(3), abstraction="lu+"))
        counters = collector.snapshot()["counters"]
        assert counters.get("mc.lu_extrapolated", 0) > 0
        assert counters.get("mc.inactive_clocks_freed", 0) > 0
        assert "mc.waiting_subsumed" in counters


@settings(max_examples=40, deadline=None)
@given(random_automata())
def test_random_automata_abstractions_agree(automaton):
    """Property: lu+ and k reach exactly the same discrete
    configurations of arbitrary small diagonal-free automata."""
    network = Network("rand")
    network.add_process(automaton.name, automaton)
    k_result, k_configs = _configs(ZoneGraph(network, abstraction="k"),
                                   evict_waiting=False)
    lu_result, lu_configs = _configs(ZoneGraph(network, abstraction="lu+"))
    assert lu_configs == k_configs
    # No stored-states comparison here: on degenerate automata (a
    # clock with no lower-bound guard at all) Extra+_LU widens zones
    # past the invariant ceiling, which can *split* subsumption
    # chains k-extrapolation keeps intact.  Discrete reachability is
    # the property; the curated models assert the stored bound.


# ---------------------------------------------------------------------------
# Search limits.


class TestSearchLimits:
    def test_build_graph_raises_search_limit(self):
        graph = ZoneGraph(make_fischer(3))
        with pytest.raises(SearchLimitError) as exc_info:
            build_graph(graph, max_states=10)
        assert exc_info.value.limit == 10
        # Dual inheritance: a repro error *and* the MemoryError that
        # pre-core callers caught.
        assert isinstance(exc_info.value, ReproError)
        assert isinstance(exc_info.value, MemoryError)

    def test_materialise_propagates_search_limit(self):
        graph = ZoneGraph(make_fischer(3))
        with pytest.raises(SearchLimitError):
            materialise(graph, max_states=10)

    def test_materialise_within_budget(self):
        nodes, edges, initial = materialise(ZoneGraph(make_fischer(2)))
        assert initial == 0
        assert len(nodes) == len(edges) > 0


# ---------------------------------------------------------------------------
# Cache soundness on repeated searches over one graph.


class TestSharedGraphCaching:
    def test_second_search_hits_cache_with_identical_result(self):
        graph = ZoneGraph(make_fischer(3))
        first = explore(graph)
        stats_first = graph.stats.snapshot()
        second = explore(graph)
        assert graph.succ_cache.hits > 0
        assert (second.found, second.states_explored,
                second.states_stored) == \
            (first.found, first.states_explored, first.states_stored)
        # Logical stats of the second run == delta == the first run's.
        assert tuple(b - a for a, b in
                     zip(stats_first, graph.stats.snapshot())) == stats_first

    def test_interning_shares_zone_objects(self):
        graph = ZoneGraph(make_fischer(3))
        explore(graph)
        assert graph.zone_store.hits > 0
        assert graph.zone_store.distinct > 0


# ---------------------------------------------------------------------------
# Serial vs parallel observability totals.


def _observed_explore(n):
    result = explore(ZoneGraph(make_fischer(n)))
    return (result.found, result.states_explored, result.states_stored)


class TestParallelEquivalence:
    def test_parallel_obs_totals_match_serial(self):
        tasks = [(2,), (3,), (2,), (3,)]
        with collecting() as serial_c:
            serial = SerialExecutor().map(_observed_explore, tasks)
        with ParallelExecutor(workers=2) as pool:
            with collecting() as parallel_c:
                parallel = pool.map(_observed_explore, tasks)
        assert parallel == serial
        assert _logical_mc(parallel_c.snapshot()) == \
            _logical_mc(serial_c.snapshot())
