"""Tests for the UPPAAL-style textual query language.

Includes the paper's Section II-a queries written verbatim(ish) and
checked against the train-gate model.
"""

import pytest

from repro.core import QueryError
from repro.mc import (
    AF,
    AG,
    EF,
    EG,
    LeadsTo,
    Verifier,
    parse_query,
)
from repro.models.traingate import make_traingate


class TestParsing:
    def test_quantified_query_shape(self):
        q = parse_query("A[] forall (i : 0..2) Train(i).Safe")
        assert isinstance(q, AG)

    def test_path_operators(self):
        assert isinstance(parse_query("E<> P.loc"), EF)
        assert isinstance(parse_query("A<> P.loc"), AF)
        assert isinstance(parse_query("E[] P.loc"), EG)
        assert isinstance(parse_query("A[] P.loc"), AG)

    def test_leadsto(self):
        q = parse_query("Train(0).Appr --> Train(0).Cross")
        assert isinstance(q, LeadsTo)

    def test_deadlock(self):
        q = parse_query("A[] not deadlock")
        assert isinstance(q, AG)

    def test_variable_comparison(self):
        q = parse_query("E<> len > 1")
        assert isinstance(q, EF)

    def test_errors(self):
        with pytest.raises(QueryError):
            parse_query("P.loc")  # no path operator
        with pytest.raises(QueryError):
            parse_query("A[] P.loc extra")
        with pytest.raises(QueryError):
            parse_query("A[] @@@")
        with pytest.raises(QueryError):
            parse_query("A[] forall (i : a..b) P.loc")

    def test_parentheses_and_not(self):
        q = parse_query("E<> !(Gate.Free || Gate.Occ)")
        assert isinstance(q, EF)


class TestAgainstTrainGate:
    """The exact property texts of Section II-a."""

    @pytest.fixture(scope="class")
    def verifier(self):
        return Verifier(make_traingate(2))

    def test_safety_verbatim(self, verifier):
        result = verifier.check(
            "A[] forall (i : 0..1) forall (j : 0..1) "
            "Train(i).Cross && Train(j).Cross imply i == j")
        assert result.holds

    def test_liveness_verbatim(self, verifier):
        for i in range(2):
            result = verifier.check(
                f"Train({i}).Appr --> Train({i}).Cross")
            assert result.holds

    def test_deadlock_verbatim(self, verifier):
        assert verifier.check("A[] not deadlock").holds

    def test_reachability_with_data(self, verifier):
        assert verifier.check("E<> len == 2").holds
        assert not verifier.check("E<> len == 3").holds

    def test_exists_quantifier(self, verifier):
        assert verifier.check(
            "E<> exists (i : 0..1) Train(i).Cross").holds

    def test_negative_safety(self, verifier):
        """A deliberately false property is refuted."""
        assert not verifier.check(
            "A[] forall (i : 0..1) Train(i).Safe").holds

    def test_imply_precedence(self, verifier):
        # 'imply' binds loosest: (a && b) imply c.
        result = verifier.check(
            "A[] Train(0).Cross && Train(1).Cross imply len == 99")
        assert result.holds  # antecedent unsatisfiable
