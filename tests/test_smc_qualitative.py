"""Tests for qualitative SMC (SPRT over the stochastic TA semantics)."""

import pytest

from repro.models.traingate import make_traingate
from repro.smc import probability_at_least, probability_estimate
from repro.ta import Automaton, Network, clk


def biased_race(fast_rate, slow_rate):
    """Two exponential components racing to their target location."""
    network = Network()
    for name, rate in (("F", fast_rate), ("S", slow_rate)):
        automaton = Automaton(name, clocks=[])
        automaton.add_location("wait", rate=rate)
        automaton.add_location("won")
        automaton.add_edge("wait", "won")
        network.add_process(name, automaton)
    return network.freeze()


def f_wins(names, _valuation, _clocks):
    """F reached its target while S is still waiting: F won the race."""
    return names[0] == "won" and names[1] == "wait"


class TestProbabilityAtLeast:
    def test_high_probability_accepted(self):
        network = biased_race(20.0, 0.1)
        result = probability_at_least(network, f_wins, theta=0.5,
                                      horizon=50, rng=1)
        assert result.accept

    def test_low_probability_rejected(self):
        network = biased_race(0.1, 20.0)
        result = probability_at_least(network, f_wins, theta=0.5,
                                      horizon=50, rng=2)
        assert not result.accept

    def test_traingate_crossing_likely(self):
        network = make_traingate(2)
        result = probability_at_least(
            network,
            lambda names, v, c: names[0] == "Cross",
            theta=0.8, horizon=80, indifference=0.05, rng=3)
        assert result.accept

    def test_run_counts_adapt(self):
        easy = probability_at_least(
            biased_race(50.0, 0.01), f_wins, theta=0.5, horizon=50,
            rng=4)
        assert easy.runs < 200


class TestProbabilityEstimate:
    def test_interval_brackets_truth(self):
        # F wins with probability rate_f / (rate_f + rate_s) = 0.75.
        network = biased_race(3.0, 1.0)
        estimate = probability_estimate(network, f_wins, horizon=100,
                                        runs=600, rng=5)
        assert estimate.low <= 0.75 <= estimate.high

    def test_bounded_horizon_lowers_probability(self):
        network = biased_race(0.05, 0.01)
        tight = probability_estimate(network, f_wins, horizon=1,
                                     runs=300, rng=6)
        loose = probability_estimate(network, f_wins, horizon=200,
                                     runs=300, rng=6)
        assert tight.mean <= loose.mean


class TestExpectedValue:
    def test_max_queue_length(self):
        from repro.models.traingate import make_traingate
        from repro.smc import expected_value

        network = make_traingate(2)
        estimate = expected_value(
            network, lambda n, v, c: v["len"], horizon=40, runs=100,
            rng=7, mode="max")
        assert 0.5 <= estimate.mean <= 2.0

    def test_modes_ordered(self):
        from repro.models.traingate import make_traingate
        from repro.smc import expected_value

        network = make_traingate(2)
        kwargs = dict(horizon=40, runs=60, rng=8)
        low = expected_value(network, lambda n, v, c: v["len"],
                             mode="min", **kwargs)
        high = expected_value(network, lambda n, v, c: v["len"],
                              mode="max", **kwargs)
        assert low.mean <= high.mean

    def test_bad_mode(self):
        import pytest as _pytest

        from repro.core import AnalysisError
        from repro.models.traingate import make_traingate
        from repro.smc import expected_value

        with _pytest.raises(AnalysisError):
            expected_value(make_traingate(2), lambda n, v, c: 0,
                           horizon=10, mode="avg")
