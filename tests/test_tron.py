"""Tests for the TRON-style timed online tester (rtioco)."""

import pytest

from repro.core import ModelError
from repro.mbt import OnlineTimedTester, run_timed_suite
from repro.models.busspec import (
    CoffeeMachine,
    EagerCoffeeMachine,
    SlowCoffeeMachine,
    make_coffee_spec,
)


@pytest.fixture()
def tester():
    return OnlineTimedTester(make_coffee_spec(), inputs=["coin"],
                             outputs=["coffee"], rng=1)


class TestOnlineTimedTester:
    def test_label_partition_enforced(self):
        with pytest.raises(ModelError):
            OnlineTimedTester(make_coffee_spec(), inputs=["coin"],
                              outputs=["coin"])

    def test_correct_machine_passes(self, tester):
        for brew_time in (2, 3, 4):
            result = tester.run(CoffeeMachine(brew_time), duration=40)
            assert result.passed, result

    def test_slow_machine_fails_on_deadline(self, tester):
        failures = run_timed_suite(
            tester, SlowCoffeeMachine, n_runs=10, duration=40, rng=2)
        assert failures
        assert any("quiet past a deadline" in f.reason for f in failures)

    def test_eager_machine_fails_too_early(self, tester):
        failures = run_timed_suite(
            tester, EagerCoffeeMachine, n_runs=10, duration=40, rng=3)
        assert failures
        assert any("not allowed" in f.reason for f in failures)

    def test_unknown_output_fails(self, tester):
        class TeaMachine(CoffeeMachine):
            def advance(self):
                outs = super().advance()
                return ["tea" if o == "coffee" else o for o in outs]

        result = None
        for seed in range(10):
            tester.rng = type(tester.rng)(seed)
            result = tester.run(TeaMachine(), duration=30)
            if not result.passed:
                break
        assert result is not None and not result.passed

    def test_trace_records_events(self, tester):
        result = tester.run(CoffeeMachine(), duration=30)
        kinds = {kind for _t, kind, _lbl in result.trace}
        assert "in" in kinds and "out" in kinds

    def test_correct_machine_suite_has_no_failures(self, tester):
        failures = run_timed_suite(
            tester, CoffeeMachine, n_runs=15, duration=30, rng=4)
        assert failures == []
