"""Tests for the parallel simulation runtime (:mod:`repro.runtime`).

The load-bearing property: for any SMC entry point, a ``(seed, n_runs)``
pair yields bit-identical results for :class:`SerialExecutor` and
:class:`ParallelExecutor` with any worker count and batch size, because
all randomness flows through the master source's deterministic spawn
stream and results are aggregated in run order.
"""

import functools

import pytest

from repro.core import AnalysisError, RandomSource
from repro.models import brp_modest as bm
from repro.models.traingate import cross_predicate, make_traingate
from repro.modest.toolset import Emax, Pmax, modes
from repro.runtime import (
    ParallelExecutor,
    SerialExecutor,
    Spec,
    batched,
    run_batch,
    seed_stream,
    spawn_seeds,
)
from repro.smc import (
    estimate_mean,
    estimate_probability,
    expected_value,
    first_passage_cdfs,
    probability_at_least,
    probability_estimate,
    simulate_batch,
)
from repro.smc.stochastic import network_simulator

TRAINGATE = Spec(make_traingate, 3)
CROSS0 = Spec(cross_predicate, 0)


@pytest.fixture(scope="module")
def pool2():
    with ParallelExecutor(workers=2) as executor:
        yield executor


@pytest.fixture(scope="module")
def pool4():
    with ParallelExecutor(workers=4) as executor:
        yield executor


# Module-level run closures (picklable) for the generic estimators.

def biased_coin(rng):
    return rng.random() < 0.25


def uniform_sample(rng):
    return rng.uniform(0.0, 10.0)


class TestSpec:
    def test_build_and_cache(self):
        spec = Spec(make_traingate, 2)
        network = spec.build()
        assert network.location_vector_names(
            network.initial_locations())[0] == "Safe"
        from repro.runtime import build_cached
        assert build_cached(spec) is build_cached(spec)

    def test_string_target(self):
        spec = Spec("repro.models.traingate:make_traingate", 2)
        assert spec == Spec(make_traingate, 2)
        assert hash(spec) == hash(Spec(make_traingate, 2))

    def test_rejects_locals(self):
        def local_factory():
            return None

        with pytest.raises(AnalysisError):
            Spec(local_factory)

    def test_rejects_malformed_string(self):
        with pytest.raises(AnalysisError):
            Spec("no_colon_here")

    def test_repr_names_target(self):
        assert "make_traingate" in repr(Spec(make_traingate, 3))


class TestSeedStreams:
    def test_spawn_records_key(self):
        parent = RandomSource(99)
        children = [parent.spawn() for _ in range(3)]
        assert [c.spawn_key for c in children] == [(0,), (1,), (2,)]
        grandchild = children[1].spawn()
        assert grandchild.spawn_key == (1, 0)
        assert "spawn_key=(1, 0)" in repr(grandchild)

    def test_seed_stream_matches_spawn(self):
        parent = RandomSource(123)
        assert seed_stream(123, 4) == [parent.spawn().seed
                                       for _ in range(4)]
        assert spawn_seeds(123, 4) == seed_stream(123, 4)

    def test_same_master_seed_same_stream(self):
        assert spawn_seeds(7, 10) == spawn_seeds(7, 10)
        assert spawn_seeds(7, 10) != spawn_seeds(8, 10)

    def test_cross_process_determinism(self, pool2):
        """The regression the spawn-key fix guards: a worker process
        spawning from the same master seed sees the same child seeds."""
        remote, = pool2.map(spawn_seeds, [(123, 6)])
        assert remote == spawn_seeds(123, 6)

    def test_batched(self):
        assert batched(list(range(5)), 2) == [[0, 1], [2, 3], [4]]
        assert batched([], 3) == []
        with pytest.raises(ValueError):
            batched([1], 0)


class TestExecutors:
    def test_serial_map_order(self):
        ex = SerialExecutor()
        assert ex.map(run_batch, [(biased_coin, [1, 2]),
                                  (biased_coin, [3])]) == [
            run_batch(biased_coin, [1, 2]), run_batch(biased_coin, [3])]

    def test_parallel_map_order(self, pool4):
        tasks = [(biased_coin, chunk)
                 for chunk in batched(seed_stream(5, 40), 10)]
        assert pool4.map(run_batch, tasks) == \
            SerialExecutor().map(run_batch, tasks)

    def test_imap_is_lazy(self):
        consumed = []

        def tasks():
            for i in range(100):
                consumed.append(i)
                yield (biased_coin, [i])

        ex = SerialExecutor()
        results = ex.imap(run_batch, tasks())
        next(results)
        next(results)
        results.close()
        assert len(consumed) == 2

    def test_parallel_imap_early_stop(self, pool2):
        """Closing the generator stops task consumption (the SPRT
        early-stopping mechanism); only the in-flight window runs."""
        drawn = []

        def tasks():
            for i in range(10000):
                drawn.append(i)
                yield (biased_coin, [i])

        results = pool2.imap(run_batch, tasks())
        next(results)
        results.close()
        assert len(drawn) <= 2 * pool2.inflight

    def test_batch_size_for(self):
        assert SerialExecutor().batch_size_for(100) == 25
        assert ParallelExecutor(workers=4).batch_size_for(100) == 7
        assert SerialExecutor().batch_size_for(1) == 1

    def test_workers_validation(self):
        with pytest.raises(AnalysisError):
            ParallelExecutor(workers=0)


class TestGenericEstimators:
    def test_estimate_probability_equivalence(self, pool2, pool4):
        kwargs = dict(runs=300, rng=13)
        serial = estimate_probability(biased_coin, executor=SerialExecutor(),
                                      **kwargs)
        for pool in (pool2, pool4):
            par = estimate_probability(biased_coin, executor=pool, **kwargs)
            assert (par.successes, par.runs, par.low, par.high) == \
                (serial.successes, serial.runs, serial.low, serial.high)
        assert serial.low < 0.25 < serial.high

    def test_batch_size_invariance(self, pool2):
        reference = estimate_probability(biased_coin, runs=100, rng=1,
                                         executor=SerialExecutor())
        for size in (1, 7, 100):
            again = estimate_probability(biased_coin, runs=100, rng=1,
                                         executor=pool2, batch_size=size)
            assert again.successes == reference.successes

    def test_estimate_mean_equivalence(self, pool2):
        serial = estimate_mean(uniform_sample, runs=200, rng=2,
                               executor=SerialExecutor())
        par = estimate_mean(uniform_sample, runs=200, rng=2, executor=pool2)
        assert par.samples == serial.samples


class TestTraingateEquivalence:
    """The acceptance-criterion tests: identical ProbabilityEstimate and
    SPRT verdicts for serial and 2/4-worker parallel execution on the
    train-gate model."""

    def test_probability_estimate(self, pool2, pool4):
        kwargs = dict(horizon=100, runs=60, rng=42)
        serial = probability_estimate(TRAINGATE, CROSS0,
                                      executor=SerialExecutor(), **kwargs)
        for pool in (pool2, pool4):
            par = probability_estimate(TRAINGATE, CROSS0, executor=pool,
                                       **kwargs)
            assert (par.successes, par.runs, par.low, par.high) == \
                (serial.successes, serial.runs, serial.low, serial.high)

    def test_sprt_verdict(self, pool2, pool4):
        kwargs = dict(theta=0.5, horizon=100, indifference=0.1, rng=7)
        serial = probability_at_least(TRAINGATE, CROSS0,
                                      executor=SerialExecutor(), **kwargs)
        for pool in (pool2, pool4):
            par = probability_at_least(TRAINGATE, CROSS0, executor=pool,
                                       **kwargs)
            assert (par.accept, par.runs, par.successes) == \
                (serial.accept, serial.runs, serial.successes)
        assert serial.accept  # trains do cross within 100 t.u.

    def test_sprt_chunk_invariance(self, pool2):
        serial = probability_at_least(TRAINGATE, CROSS0, theta=0.5,
                                      horizon=100, indifference=0.1, rng=7,
                                      executor=SerialExecutor())
        for size in (1, 5, 64):
            again = probability_at_least(TRAINGATE, CROSS0, theta=0.5,
                                         horizon=100, indifference=0.1,
                                         rng=7, executor=pool2,
                                         batch_size=size)
            assert (again.accept, again.runs) == (serial.accept,
                                                  serial.runs)

    def test_expected_value_matches_default_serial(self, pool2):
        """The default (no-executor) path already spawns one child
        source per run, so executor runs see identical seeds."""
        default = expected_value(make_traingate(3), cross_predicate(0),
                                 horizon=50, runs=40, rng=4)
        serial = expected_value(TRAINGATE, CROSS0, horizon=50, runs=40,
                                rng=4, executor=SerialExecutor())
        par = expected_value(TRAINGATE, CROSS0, horizon=50, runs=40,
                             rng=4, executor=pool2)
        assert default.samples == serial.samples == par.samples

    def test_first_passage_cdfs_equivalence(self, pool2):
        factory = functools.partial(network_simulator, TRAINGATE)
        predicates = {i: Spec(cross_predicate, i) for i in range(3)}
        grid = [20, 50, 90]
        kwargs = dict(horizon=100, runs=40, grid=grid, rng=3)
        default = first_passage_cdfs(factory, predicates, **kwargs)
        serial = first_passage_cdfs(factory, predicates,
                                    executor=SerialExecutor(), **kwargs)
        par = first_passage_cdfs(factory, predicates, executor=pool2,
                                 **kwargs)
        assert default == serial == par

    def test_simulate_batch_entry_point(self):
        """The module-level batch closure the workers execute."""
        seeds = seed_stream(42, 5)
        outcomes = simulate_batch(TRAINGATE, seeds, CROSS0, horizon=100)
        assert outcomes == [
            simulate_batch(TRAINGATE, [s], CROSS0, horizon=100)[0]
            for s in seeds]
        assert all(isinstance(o, bool) for o in outcomes)


class TestModesEquivalence:
    def test_modes_parallel_matches_serial(self, pool2):
        source = bm.brp_modest_source(2, 1, 1)
        props = [Pmax("P1", bm.not_success), Emax("E", bm.reported)]
        serial = modes(source, props, runs=60, rng=6,
                       executor=SerialExecutor())
        par = modes(source, props, runs=60, rng=6, executor=pool2)
        assert (serial["P1"].successes, serial["P1"].runs) == \
            (par["P1"].successes, par["P1"].runs)
        assert serial["E"].samples == par["E"].samples
        assert 3.0 < serial["E"].mean < 6.0


class TestSplittingEquivalence:
    def test_splitting_parallel_matches_serial(self, pool2):
        from repro.models import brp
        from repro.smc import fixed_effort_splitting

        model = Spec(brp.make_brp, 8, 1, 1)
        serial = fixed_effort_splitting(
            model, retransmission_level, max_level=1, runs_per_stage=60,
            rng=11, executor=SerialExecutor())
        par = fixed_effort_splitting(
            model, retransmission_level, max_level=1, runs_per_stage=60,
            rng=11, executor=pool2)
        assert serial.probability == par.probability
        assert serial.stage_probabilities == par.stage_probabilities
        assert serial.total_runs == par.total_runs


def retransmission_level(_names, valuation, _clocks):
    """BRP importance function: the retransmission counter."""
    return min(valuation.get("rc", 0), 1)


def double(value):
    return 2 * value


class TestExecutorEdgePaths:
    def test_close_is_idempotent(self):
        executor = ParallelExecutor(workers=2)
        assert list(executor.map(double, [(i,) for i in range(4)])) == \
            [0, 2, 4, 6]
        executor.close()
        executor.close()
        # A closed executor lazily rebuilds its pool on next use.
        assert list(executor.map(double, [(5,)])) == [10]
        executor.close()

    def test_generator_close_mid_stream(self, pool2):
        results = pool2.imap(double, [(i,) for i in range(50)])
        assert next(results) == 0
        assert next(results) == 2
        results.close()
        # The executor survives an abandoned stream: in-flight futures
        # are drained, not leaked, and the pool stays usable.
        assert list(pool2.map(double, [(7,)])) == [14]

    def test_inflight_one(self):
        with ParallelExecutor(workers=2, inflight=1) as executor:
            assert list(executor.imap(double, [(i,) for i in range(6)])) \
                == [0, 2, 4, 6, 8, 10]

    def test_zero_tasks(self, pool2):
        assert list(pool2.imap(double, [])) == []
        assert list(SerialExecutor().imap(double, [])) == []

    def test_parallel_without_collector(self, pool2):
        # No active collector: results flow through the unwrapped fast
        # path (no metrics, no worker-side wrapping).
        from repro.obs.metrics import active

        assert active() is None
        assert list(pool2.map(double, [(i,) for i in range(8)])) == \
            [2 * i for i in range(8)]
