"""Unit and property tests for federations (unions of zones)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dbm import DBM, Federation, le, lt


def interval(lo, hi, size=2, clock=1):
    """Zone lo <= x_clock <= hi."""
    z = DBM.zero(size).up()
    z.constrain(clock, 0, le(hi)).constrain(0, clock, le(-lo))
    return z


class TestFederationBasics:
    def test_empty(self):
        f = Federation.empty(2)
        assert f.is_empty()
        assert not f.contains_point((3,))

    def test_from_zone(self):
        f = Federation.from_zone(interval(2, 5))
        assert f.contains_point((3,))
        assert not f.contains_point((6,))

    def test_union(self):
        f = Federation.from_zone(interval(0, 2)).union(
            Federation.from_zone(interval(5, 7)))
        assert f.contains_point((1,))
        assert f.contains_point((6,))
        assert not f.contains_point((3,))

    def test_reduction_drops_subsumed(self):
        f = Federation(2, [interval(0, 10), interval(2, 5)])
        assert len(f) == 1

    def test_intersect(self):
        f1 = Federation.from_zone(interval(0, 6))
        f2 = Federation.from_zone(interval(4, 9))
        both = f1.intersect(f2)
        assert both.contains_point((5,))
        assert not both.contains_point((2,))

    def test_subtract_middle(self):
        f = Federation.from_zone(interval(0, 10)).subtract(
            Federation.from_zone(interval(3, 6)))
        assert f.contains_point((2,))
        assert f.contains_point((7,))
        assert not f.contains_point((4,))

    def test_subtract_everything(self):
        f = Federation.from_zone(interval(2, 4)).subtract(
            Federation.from_zone(interval(0, 10)))
        assert f.is_empty()

    def test_complement(self):
        f = Federation.from_zone(interval(3, 5)).complement()
        assert f.contains_point((1,))
        assert f.contains_point((9,))
        assert not f.contains_point((4,))

    def test_includes_zone(self):
        f = Federation(2, [interval(0, 4), interval(4, 9)])
        # The union covers [0,9] even though neither zone alone does.
        assert f.includes_zone(interval(2, 7))
        assert not f.includes_zone(interval(2, 12))

    def test_equality_is_semantic(self):
        f1 = Federation(2, [interval(0, 4), interval(4, 9)])
        f2 = Federation(2, [interval(0, 9)])
        assert f1 == f2

    def test_up(self):
        f = Federation.from_zone(interval(2, 3)).up()
        assert f.contains_point((100,))
        assert not f.contains_point((1,))

    def test_down(self):
        f = Federation.from_zone(interval(5, 6)).down()
        assert f.contains_point((0,))
        assert f.contains_point((6,))
        assert not f.contains_point((7,))


intervals = st.tuples(st.integers(0, 12), st.integers(0, 12)).map(
    lambda t: (min(t), max(t)))


@settings(max_examples=150, deadline=None)
@given(st.lists(intervals, max_size=4), st.lists(intervals, max_size=4),
       st.integers(0, 12))
def test_subtract_semantics(a_ints, b_ints, x):
    """Point-wise semantics of federation difference on 1-clock zones."""
    fa = Federation(2, [interval(lo, hi) for lo, hi in a_ints])
    fb = Federation(2, [interval(lo, hi) for lo, hi in b_ints])
    diff = fa.subtract(fb)
    in_a = any(lo <= x <= hi for lo, hi in a_ints)
    in_b = any(lo <= x <= hi for lo, hi in b_ints)
    assert diff.contains_point((x,)) == (in_a and not in_b)


@settings(max_examples=150, deadline=None)
@given(st.lists(intervals, max_size=4), st.integers(0, 12))
def test_complement_semantics(ints, x):
    f = Federation(2, [interval(lo, hi) for lo, hi in ints])
    comp = f.complement()
    assert comp.contains_point((x,)) == (not f.contains_point((x,)))


def test_federation_is_unhashable():
    """Equality is semantic, so hashing is explicitly disabled: set or
    dict insertion must fail loudly instead of falling back to id()."""
    import pytest

    f = Federation(2, [interval(0, 5)])
    assert Federation.__hash__ is None
    with pytest.raises(TypeError):
        hash(f)
    with pytest.raises(TypeError):
        {f}
