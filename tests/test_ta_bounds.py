"""Static LU-bounds / clock-activity analysis and the LU extrapolation.

Unit anchors: the Fischer and train-gate fixpoints have hand-derivable
per-location bounds, so the tables are checked literally.  Property
layer: on random zones ``extrapolate_lu`` must be a widening (never
drops a point), idempotent, and — fed the symmetric ``L = U = M``
bounds — at least as coarse as the classic k-extrapolation.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dbm import DBM
from repro.dbm.bounds import NO_BOUND, le
from repro.models.fischer import make_fischer
from repro.ta import Automaton, Network, ZoneGraph, clk
from repro.ta.bounds import network_bounds


def _rows_by_location(process, bounds):
    per_loc = {}
    for li, name in enumerate(process.location_names):
        per_loc[name] = {gi: (low, up)
                         for gi, low, up in bounds.lu_rows[li]}
    return per_loc


class TestFischerFixpoint:
    """Hand-derived tables for one Fischer process (k = 2).

    ``x`` is reset entering ``req`` and entering ``wait``; it is read
    by the invariant/guard ``x <= k`` at ``req`` and by the guard
    ``x > k`` leaving ``wait``; nothing reads it at ``idle`` or ``cs``.
    """

    def setup_method(self):
        self.network = make_fischer(2, 2)
        self.bounds = network_bounds(self.network)
        self.process = self.network.processes[0]
        self.pb = self.bounds.per_process[0]
        self.x = self.process.clock_index["x"]

    def test_no_diagonals(self):
        assert not self.bounds.has_diagonals

    def test_per_location_lu(self):
        rows = _rows_by_location(self.process, self.pb)
        assert rows["req"][self.x] == (NO_BOUND, 2)
        assert rows["wait"][self.x] == (2, NO_BOUND)
        assert rows["idle"][self.x] == (NO_BOUND, NO_BOUND)
        assert rows["cs"][self.x] == (NO_BOUND, NO_BOUND)

    def test_inactive_locations(self):
        index = self.process.location_index
        inactive = self.pb.inactive
        assert inactive[index["idle"]] == (self.x,)
        assert inactive[index["cs"]] == (self.x,)
        assert inactive[index["req"]] == ()
        assert inactive[index["wait"]] == ()

    def test_lu_for_is_location_dependent(self):
        index = self.process.location_index
        req, wait, idle = index["req"], index["wait"], index["idle"]
        gi = self.process.clock_index["x"]
        lowers, uppers = self.bounds.lu_for((req, idle))
        assert lowers[0] == uppers[0] == 0
        assert (lowers[gi], uppers[gi]) == (NO_BOUND, 2)
        lowers, uppers = self.bounds.lu_for((wait, idle))
        assert (lowers[gi], uppers[gi]) == (2, NO_BOUND)
        lowers, uppers = self.bounds.lu_for((idle, idle))
        assert (lowers[gi], uppers[gi]) == (NO_BOUND, NO_BOUND)

    def test_lu_pairs_are_interned(self):
        index = self.process.location_index
        idle, cs = index["idle"], index["cs"]
        assert self.bounds.lu_for((idle, idle)) \
            is self.bounds.lu_for((idle, idle))
        # idle and cs have identical (empty) rows, so the assembled
        # tables — and through interning the pair objects — coincide.
        assert self.bounds.lu_for((idle, idle)) \
            is self.bounds.lu_for((cs, cs))

    def test_inactive_rows_are_interned(self):
        assert self.bounds.inactive_for((0, 0)) \
            is self.bounds.inactive_for((0, 0))
        assert set(self.bounds.inactive_for((0, 3))) == {
            self.network.processes[0].clock_index["x"],
            self.network.processes[1].clock_index["x"]}

    def test_extra_constants_floor_and_keep_active(self):
        gi = self.process.clock_index["x"]
        extra = network_bounds(self.network, {gi: 7})
        lowers, uppers = extra.lu_for((0, 0))
        assert lowers[gi] == uppers[gi] == 7
        assert gi not in extra.inactive_for((0, 0))
        # Memoised per (network, extras) on the network itself.
        assert network_bounds(self.network, {gi: 7}) is extra
        assert network_bounds(self.network) is self.bounds


class TestResetKillsFlow:
    def test_bound_does_not_cross_a_reset(self):
        a = Automaton("A", clocks=["x"])
        a.add_location("s0")
        a.add_location("s1")
        a.add_location("s2")
        a.add_edge("s0", "s1", resets=[("x", 0)])
        a.add_edge("s1", "s2", guard=[clk("x", ">=", 9)])
        net = Network("n")
        net.add_process("P", a)
        net.freeze()
        bounds = network_bounds(net)
        rows = _rows_by_location(net.processes[0],
                                 bounds.per_process[0])
        gi = net.processes[0].clock_index["x"]
        # The x >= 9 comparison is needed at s1, but the reset on
        # s0 -> s1 stops it flowing back to s0.
        assert rows["s1"][gi] == (9, NO_BOUND)
        assert rows["s0"][gi] == (NO_BOUND, NO_BOUND)


class TestDiagonalFallback:
    def _diagonal_network(self):
        a = Automaton("A", clocks=["x", "y"])
        a.add_location("s0", invariant=[clk("y", "<=", 5)])
        a.add_location("s1")
        a.add_edge("s0", "s1", guard=[clk("x", ">", 1, other="y")],
                   resets=[("x", 0), ("y", 0)])
        net = Network("n")
        net.add_process("P", a)
        return net.freeze()

    def test_flagged(self):
        assert network_bounds(self._diagonal_network()).has_diagonals

    def test_zonegraph_falls_back_to_k(self):
        graph = ZoneGraph(self._diagonal_network(), abstraction="lu+")
        assert graph.abstraction == "k"


# ---------------------------------------------------------------------------
# DBM-level properties of Extra+_LU.


@st.composite
def zones(draw):
    n = draw(st.integers(2, 4))
    zone = DBM.zero(n).up()
    for _ in range(draw(st.integers(0, 6))):
        i = draw(st.integers(0, n - 1))
        j = draw(st.integers(0, n - 1))
        if i == j:
            continue
        tightened = zone.copy()
        tightened.constrain(i, j, le(draw(st.integers(-4, 8))))
        if not tightened.is_empty():
            zone = tightened
    return zone


@st.composite
def zones_with_bounds(draw):
    zone = draw(zones())
    n = zone.size
    consts = st.one_of(st.just(NO_BOUND), st.integers(0, 8))
    lowers = [0] + [draw(consts) for _ in range(n - 1)]
    uppers = [0] + [draw(consts) for _ in range(n - 1)]
    return zone, tuple(lowers), tuple(uppers)


@settings(max_examples=150, deadline=None)
@given(zones_with_bounds())
def test_extrapolate_lu_only_widens(data):
    zone, lowers, uppers = data
    before = zone.copy()
    after = zone.copy().extrapolate_lu(lowers, uppers)
    assert after.includes(before)


@settings(max_examples=150, deadline=None)
@given(zones_with_bounds())
def test_extrapolate_lu_is_idempotent(data):
    zone, lowers, uppers = data
    once = zone.copy().extrapolate_lu(lowers, uppers)
    twice = once.copy().extrapolate_lu(lowers, uppers)
    assert twice.key() == once.key()


@settings(max_examples=150, deadline=None)
@given(zones())
def test_symmetric_lu_is_coarser_than_classic(zone):
    n = zone.size
    maxima = [0] + [5] * (n - 1)
    classic = zone.copy().extrapolate(maxima)
    lu = zone.copy().extrapolate_lu(tuple(maxima), tuple(maxima))
    assert lu.includes(classic)


def test_extrapolate_lu_validates_lengths():
    from repro.core.errors import ModelError

    zone = DBM.zero(3).up()
    with pytest.raises(ModelError):
        zone.extrapolate_lu((0, 0), (0, 0, 0))


def test_free_clock_bounds_checked():
    from repro.core.errors import ModelError

    zone = DBM.zero(3).up()
    for bad in (0, 3, -1):
        with pytest.raises(ModelError):
            zone.free_clock(bad)
    freed = zone.copy()
    freed.free_clock(1)
    assert freed.includes(zone)
