"""Tests for fixed-effort importance splitting (rare events)."""

import pytest

from repro.core import AnalysisError
from repro.models import brp
from repro.pta import PTA, PTANetwork
from repro.smc import fixed_effort_splitting
from repro.ta import clk

Q_ATTEMPT = 0.02 + 0.98 * 0.01


def chain_pta(p, levels):
    """A chain of biased coin flips: P(top) = p ** levels exactly."""
    a = PTA("Chain", clocks=["x"])
    for k in range(levels + 1):
        a.add_location(f"n{k}", invariant=[clk("x", "<=", 1)]
                       if k < levels else ())
    a.add_location("dead")
    a.initial_location = "n0"
    for k in range(levels):
        a.add_prob_edge(f"n{k}",
                        [(p, f"n{k + 1}", [("x", 0)]),
                         (1 - p, "dead", ())],
                        guard=[clk("x", ">=", 1)])
    net = PTANetwork()
    net.add_process("C", a)
    return net.freeze()


def chain_level(names, _valuation, _clocks):
    name = names[0]
    if name == "dead":
        return 0
    return int(name[1:])


class TestChain:
    def test_exact_product_structure(self):
        net = chain_pta(0.2, 3)
        result = fixed_effort_splitting(net, chain_level, max_level=3,
                                        runs_per_stage=600, rng=1)
        assert result.probability == pytest.approx(0.2 ** 3, rel=0.4)
        assert len(result.stage_probabilities) == 3
        assert result.total_runs == 3 * 600

    def test_stage_probabilities_near_p(self):
        net = chain_pta(0.3, 2)
        result = fixed_effort_splitting(net, chain_level, max_level=2,
                                        runs_per_stage=800, rng=2)
        for stage in result.stage_probabilities:
            assert 0.2 < stage < 0.4

    def test_dead_stage_returns_zero(self):
        net = chain_pta(0.0001, 2)
        result = fixed_effort_splitting(net, chain_level, max_level=2,
                                        runs_per_stage=50, rng=3)
        # With 50 runs per stage the first climb almost surely dies out.
        assert result.probability == 0.0 or result.probability < 1e-4

    def test_initial_level_must_be_zero(self):
        net = chain_pta(0.5, 2)
        with pytest.raises(AnalysisError):
            fixed_effort_splitting(net, lambda n, v, c: 1, max_level=2,
                                   runs_per_stage=10, rng=4)


class TestBRPRareEvent:
    def test_single_frame_failure_probability(self):
        """The event Table I's modes column could not observe: a frame
        exhausting its retransmissions (~2.6e-5), estimated within a
        small factor from 1500 short runs."""
        net = brp.make_brp(1, 2, 1)

        def level(names, valuation, clocks):
            if names[0] in ("s_nok", "s_dk"):
                return 3
            return valuation["rc"]

        result = fixed_effort_splitting(net, level, max_level=3,
                                        runs_per_stage=500, rng=7)
        truth = Q_ATTEMPT ** 3
        assert result.probability == pytest.approx(truth, rel=0.5)
        assert result.total_runs == 1500
