"""Tests for timed games: solver correctness on hand-crafted games and
the paper's train game (Figs. 2-3)."""

import pytest

from repro.models.traingame import (
    crossing_predicate,
    make_traingame,
    safety_predicate,
)
from repro.ta import Automaton, DiscreteSemantics, Network, clk
from repro.tiga import (
    GameGraph,
    controller_wins_reachability,
    controller_wins_safety,
    execute,
    solve_reachability,
)


def single_game(automaton):
    net = Network()
    net.add_process("P", automaton)
    return net


class TestSimpleGames:
    def test_controller_reaches_goal_directly(self):
        a = Automaton("A", clocks=[])
        a.add_location("s")
        a.add_location("goal")
        a.add_edge("s", "goal", controllable=True)
        graph = GameGraph(single_game(a))
        wins, strategy = controller_wins_reachability(
            graph, lambda names, v, c: names[0] == "goal")
        assert wins
        result = execute(strategy, rng=1)
        assert result.reached_goal

    def test_environment_can_divert(self):
        """Env can move s to a sink before the controller acts."""
        a = Automaton("A", clocks=[])
        a.add_location("s")
        a.add_location("goal")
        a.add_location("sink")
        a.add_edge("s", "goal", controllable=True)
        a.add_edge("s", "sink", controllable=False)
        graph = GameGraph(single_game(a))
        wins, _strategy = controller_wins_reachability(
            graph, lambda names, v, c: names[0] == "goal")
        assert not wins

    def test_environment_forced_by_invariant(self):
        """No controller edge at all, but the invariant forces the
        environment onto the goal."""
        a = Automaton("A", clocks=["x"])
        a.add_location("s", invariant=[clk("x", "<=", 2)])
        a.add_location("goal")
        a.add_edge("s", "goal", guard=[clk("x", ">=", 2)],
                   controllable=False)
        graph = GameGraph(single_game(a))
        wins, strategy = controller_wins_reachability(
            graph, lambda names, v, c: names[0] == "goal")
        assert wins
        assert execute(strategy, rng=2).reached_goal

    def test_safety_needs_preemption(self):
        """Time ticking into x == 3 enables a fatal env edge forever;
        the controller must fire its own edge before then."""
        a = Automaton("A", clocks=["x"])
        a.add_location("s")
        a.add_location("bad")
        a.add_location("haven")
        a.add_edge("s", "bad", guard=[clk("x", ">=", 3)],
                   controllable=False)
        a.add_edge("s", "haven", guard=[clk("x", "<=", 2)],
                   controllable=True)
        graph = GameGraph(single_game(a))
        wins, strategy = controller_wins_safety(
            graph, lambda names, v, c: names[0] != "bad")
        assert wins
        safe = graph.satisfying(lambda names, v, c: names[0] != "bad")
        for seed in range(30):
            assert execute(strategy, rng=seed, max_steps=50,
                           safe=safe).stayed_safe

    def test_safety_unwinnable_when_env_unavoidable(self):
        a = Automaton("A", clocks=[])
        a.add_location("s")
        a.add_location("bad")
        a.add_edge("s", "bad", controllable=False)
        graph = GameGraph(single_game(a))
        wins, _strategy = controller_wins_safety(
            graph, lambda names, v, c: names[0] != "bad")
        assert not wins

    def test_goal_state_strategy_has_no_move(self):
        a = Automaton("A", clocks=[])
        a.add_location("goal")
        graph = GameGraph(single_game(a))
        winning, strategy = solve_reachability(
            graph, graph.satisfying(lambda n, v, c: n[0] == "goal"))
        assert 0 in winning
        assert strategy.move(0) is None


class TestTrainGame:
    """The paper's synthesis experiment (Figs. 2-3)."""

    @pytest.fixture(scope="class")
    def graph(self):
        return GameGraph(make_traingame(2))

    def test_arena_size_reasonable(self, graph):
        assert 1000 < graph.num_states < 100000

    def test_safety_strategy_exists(self, graph):
        wins, strategy = controller_wins_safety(
            graph, safety_predicate(2))
        assert wins
        assert len(strategy.winning) > 0

    def test_safety_strategy_validates_in_closed_loop(self, graph):
        _wins, strategy = controller_wins_safety(
            graph, safety_predicate(2))
        safe = graph.satisfying(safety_predicate(2))
        for seed in range(40):
            result = execute(strategy, rng=seed, max_steps=200, safe=safe)
            assert result.stayed_safe, f"seed {seed}"

    def test_approaching_train_can_be_forced_to_cross(self):
        net = make_traingame(2)
        semantics = DiscreteSemantics(net)
        appr = None
        for transition, succ in semantics.action_successors(
                semantics.initial()):
            if transition.channel == "appr_0":
                appr = succ
        assert appr is not None
        graph = GameGraph(net, initial_state=appr)
        wins, strategy = controller_wins_reachability(
            graph, crossing_predicate(0))
        assert wins
        for seed in range(20):
            assert execute(strategy, rng=seed,
                           max_steps=1000).reached_goal, f"seed {seed}"

    def test_no_strategy_to_force_two_crossings(self, graph):
        """Sanity: the controller cannot *force* a safety violation
        (only trains enter the bridge, uncontrollably)."""
        wins, _strategy = controller_wins_reachability(
            graph,
            lambda names, v, c:
                sum(1 for n in names[:2] if n == "Cross") == 2)
        assert not wins

    def test_scaled_game_agrees(self):
        graph = GameGraph(make_traingame(2, scale=2))
        wins, _s = controller_wins_safety(graph, safety_predicate(2))
        assert wins
